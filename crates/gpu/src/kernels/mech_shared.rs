//! GPU version III: the shared-memory tile kernel (paper §IV-E, Fig. 7).
//!
//! "We can exploit the fact that cells in the same voxel of the UG grid
//! share the same neighboring voxels … Instead of parallelizing the for
//! loop over all cells, we consider a kernel that would parallelize a
//! loop over all voxels. … The shared memory objects are built in
//! parallel by appending state data from agents of multiple voxels within
//! the highlighted region. To avoid race conditions, the use of atomic
//! operations is required."
//!
//! One block processes one (non-empty) voxel:
//!
//! * **Phase 0** — threads 0..27 each walk one of the voxel's 27
//!   neighbor boxes and append every agent (id, x, y, z, r) to a shared
//!   tile through an atomically-bumped cursor. Threads 27..block_dim sit
//!   idle (boundary-check divergence); concurrent appends to the single
//!   cursor serialize — exactly the two costs the paper blames for the
//!   28 % regression.
//! * **Phase 1** (after the block barrier) — thread *t* handles the *t*-th
//!   agent of the center voxel and sums Eq. 1 over the tile from shared
//!   memory. If the tile overflowed its capacity, the thread falls back
//!   to the global-memory walk so results stay exact.

use crate::engine::{Kernel, ThreadCtx, ThreadId};
use crate::kernels::geom::GridGeom;
use crate::kernels::mech::{accumulate_candidate, store_displacement, NULL_ID};
use crate::mem::{DeviceBuffer, DeviceWord};
use bdm_math::interaction::MechParams;
use bdm_math::{Scalar, Vec3};

/// Shared-memory words reserved ahead of the tile entries
/// (word 0 = cursor, word 1 = overflow flag).
pub const TILE_HEADER_WORDS: usize = 2;
/// Words per tile entry: id, x, y, z, r.
pub const WORDS_PER_ENTRY: usize = 5;

/// Shared-memory words needed for a tile of `cap` entries.
pub fn shared_words_for(cap: usize) -> usize {
    TILE_HEADER_WORDS + cap * WORDS_PER_ENTRY
}

/// Block-per-voxel shared-memory mechanical kernel.
pub struct SharedMechKernel<'a, R: Scalar + DeviceWord> {
    /// Grid geometry.
    pub geom: GridGeom<R>,
    /// Flat box index processed by each block (non-empty voxels only).
    pub voxel_ids: &'a DeviceBuffer<u32>,
    /// Cell positions.
    pub pos_x: &'a DeviceBuffer<R>,
    /// Y coordinates.
    pub pos_y: &'a DeviceBuffer<R>,
    /// Z coordinates.
    pub pos_z: &'a DeviceBuffer<R>,
    /// Cell diameters.
    pub diameter: &'a DeviceBuffer<R>,
    /// Cell adherence thresholds.
    pub adherence: &'a DeviceBuffer<R>,
    /// Grid list heads.
    pub box_start: &'a DeviceBuffer<u32>,
    /// Grid voxel populations.
    pub box_length: &'a DeviceBuffer<u32>,
    /// Successor links.
    pub successors: &'a DeviceBuffer<u32>,
    /// Output displacements.
    pub out_x: &'a DeviceBuffer<R>,
    /// Output displacements (y).
    pub out_y: &'a DeviceBuffer<R>,
    /// Output displacements (z).
    pub out_z: &'a DeviceBuffer<R>,
    /// Tile capacity in entries.
    pub tile_cap: usize,
    /// Interaction parameters.
    pub params: MechParams<R>,
}

impl<R: Scalar + DeviceWord + crate::engine::FromWord> Kernel for SharedMechKernel<'_, R> {
    fn phases(&self) -> usize {
        2
    }

    fn thread(&self, phase: usize, tid: ThreadId, ctx: &mut ThreadCtx<'_>) {
        let center_flat = ctx.ld(self.voxel_ids, tid.block as usize) as usize;
        let center_coords = self.geom.coords_of(center_flat);
        let mut boxes = [0usize; 27];
        let nb = self.geom.neighbor_boxes_of(center_coords, &mut boxes);
        ctx.iops(16);
        let t = tid.thread as usize;

        if phase == 0 {
            // Cooperative tile build: one thread per neighbor box.
            if t >= nb {
                return; // boundary-check divergence (paper §VI)
            }
            let b = boxes[t];
            let mut cur = ctx.ld(self.box_start, b);
            while cur != NULL_ID {
                ctx.begin_slot();
                let j = cur as usize;
                let x = ctx.ld(self.pos_x, j);
                let y = ctx.ld(self.pos_y, j);
                let z = ctx.ld(self.pos_z, j);
                let r = ctx.ld(self.diameter, j) * R::HALF;
                ctx.flops::<R>(1);
                let slot = ctx.sh_atomic_add_u32(0, 1) as usize;
                if slot < self.tile_cap {
                    let base = TILE_HEADER_WORDS + slot * WORDS_PER_ENTRY;
                    ctx.sh_st::<u32>(base, cur);
                    ctx.sh_st::<R>(base + 1, x);
                    ctx.sh_st::<R>(base + 2, y);
                    ctx.sh_st::<R>(base + 3, z);
                    ctx.sh_st::<R>(base + 4, r);
                } else {
                    ctx.sh_st::<u32>(1, 1); // overflow → phase 1 falls back
                }
                cur = ctx.ld(self.successors, j);
                ctx.iops(1);
            }
            return;
        }

        // ---- Phase 1: per-agent force over the tile ----
        let len = ctx.ld(self.box_length, center_flat) as usize;
        if t >= len {
            return; // boundary-check divergence again
        }
        // Walk the center list to the t-th agent.
        let mut cur = ctx.ld(self.box_start, center_flat);
        for _ in 0..t {
            cur = ctx.ld(self.successors, cur as usize);
            ctx.iops(1);
        }
        let i = cur as usize;
        let p1 = Vec3::new(
            ctx.ld(self.pos_x, i),
            ctx.ld(self.pos_y, i),
            ctx.ld(self.pos_z, i),
        );
        let r1 = ctx.ld(self.diameter, i) * R::HALF;
        let adh = ctx.ld(self.adherence, i);
        ctx.flops::<R>(1);

        let overflow = ctx.sh_ld::<u32>(1) != 0;
        let mut force = Vec3::zero();
        if !overflow {
            let count = (ctx.sh_ld::<u32>(0) as usize).min(self.tile_cap);
            for e in 0..count {
                let base = TILE_HEADER_WORDS + e * WORDS_PER_ENTRY;
                let id = ctx.sh_ld::<u32>(base);
                if id as usize == i {
                    continue;
                }
                let p2 = Vec3::new(
                    ctx.sh_ld::<R>(base + 1),
                    ctx.sh_ld::<R>(base + 2),
                    ctx.sh_ld::<R>(base + 3),
                );
                let r2 = ctx.sh_ld::<R>(base + 4);
                accumulate_candidate(ctx, p1, r1, p2, r2, &self.params, &mut force);
            }
        } else {
            // Exactness fallback: global-memory walk, v0-style.
            for &b in boxes.iter().take(nb) {
                let mut cur = ctx.ld(self.box_start, b);
                while cur != NULL_ID {
                    ctx.begin_slot();
                    let j = cur as usize;
                    if j != i {
                        let p2 = Vec3::new(
                            ctx.ld(self.pos_x, j),
                            ctx.ld(self.pos_y, j),
                            ctx.ld(self.pos_z, j),
                        );
                        let r2 = ctx.ld(self.diameter, j) * R::HALF;
                        ctx.flops::<R>(1);
                        accumulate_candidate(ctx, p1, r1, p2, r2, &self.params, &mut force);
                    }
                    cur = ctx.ld(self.successors, j);
                    ctx.iops(1);
                }
            }
        }
        store_displacement(
            ctx,
            self.out_x,
            self.out_y,
            self.out_z,
            i,
            force,
            adh,
            &self.params,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{GpuDevice, LaunchConfig};
    use crate::kernels::grid_build::{reset_grid_buffers, GridBuildKernel};
    use crate::kernels::mech::MechKernel;
    use crate::mem::DeviceAllocator;
    use bdm_device::specs::SYSTEM_A;
    use bdm_grid::UniformGrid;
    use bdm_math::{Aabb, SplitMix64};

    /// Run both the per-cell kernel and the shared-memory kernel on the
    /// same scene; displacements must agree (same math, same candidates).
    fn compare_kernels(tile_cap: usize) {
        let mut rng = SplitMix64::new(91);
        let n = 300;
        let extent = 8.0;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        let zs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        let space = Aabb::new(Vec3::zero(), Vec3::splat(extent));
        let box_len = 1.1;
        let host_grid = UniformGrid::build_serial(&xs, &ys, &zs, space, box_len);
        let geom = GridGeom::from_grid(&host_grid);
        let params = MechParams::<f64>::default_params();

        let mut alloc = DeviceAllocator::new();
        let px = alloc.alloc::<f64>(n);
        let py = alloc.alloc::<f64>(n);
        let pz = alloc.alloc::<f64>(n);
        let d = alloc.alloc::<f64>(n);
        let a = alloc.alloc::<f64>(n);
        px.upload(&xs);
        py.upload(&ys);
        pz.upload(&zs);
        d.upload(&vec![1.1; n]);
        a.upload(&vec![0.01; n]);
        let box_start = alloc.alloc::<u32>(geom.num_boxes());
        let box_length = alloc.alloc::<u32>(geom.num_boxes());
        let successors = alloc.alloc::<u32>(n);
        reset_grid_buffers(&box_start, &box_length);
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        dev.launch(
            &GridBuildKernel {
                n,
                geom,
                pos_x: &px,
                pos_y: &py,
                pos_z: &pz,
                box_start: &box_start,
                box_length: &box_length,
                successors: &successors,
            },
            LaunchConfig::for_items(n, 64),
        );

        // Reference: per-cell kernel.
        let rx = alloc.alloc::<f64>(n);
        let ry = alloc.alloc::<f64>(n);
        let rz = alloc.alloc::<f64>(n);
        dev.launch(
            &MechKernel {
                n,
                geom,
                pos_x: &px,
                pos_y: &py,
                pos_z: &pz,
                diameter: &d,
                adherence: &a,
                box_start: &box_start,
                successors: &successors,
                out_x: &rx,
                out_y: &ry,
                out_z: &rz,
                params,
            },
            LaunchConfig::for_items(n, 64),
        );

        // Shared-memory kernel over non-empty voxels.
        let mut non_empty = Vec::new();
        for flat in 0..geom.num_boxes() {
            if box_length.read(flat) > 0 {
                non_empty.push(flat as u32);
            }
        }
        let voxel_ids = alloc.alloc::<u32>(non_empty.len());
        voxel_ids.upload(&non_empty);
        let sx = alloc.alloc::<f64>(n);
        let sy = alloc.alloc::<f64>(n);
        let sz = alloc.alloc::<f64>(n);
        let k = SharedMechKernel {
            geom,
            voxel_ids: &voxel_ids,
            pos_x: &px,
            pos_y: &py,
            pos_z: &pz,
            diameter: &d,
            adherence: &a,
            box_start: &box_start,
            box_length: &box_length,
            successors: &successors,
            out_x: &sx,
            out_y: &sy,
            out_z: &sz,
            tile_cap,
            params,
        };
        let r = dev.launch(
            &k,
            LaunchConfig {
                grid_dim: non_empty.len() as u32,
                block_dim: 64,
                shared_words: shared_words_for(tile_cap),
            },
        );
        assert!(r.counters.barriers as usize >= non_empty.len());
        assert!(
            r.counters.atomic_serial_cycles > 0.0,
            "tile atomics must conflict"
        );

        let mut want = vec![0.0; n];
        let mut got = vec![0.0; n];
        for (dst, src) in [(&mut want, &rx), (&mut got, &sx)] {
            src.download(dst);
        }
        for i in 0..n {
            assert!(
                (want[i] - got[i]).abs() < 1e-9,
                "cell {i}: {} vs {}",
                want[i],
                got[i]
            );
        }
    }

    #[test]
    fn shared_kernel_matches_per_cell_kernel() {
        compare_kernels(512);
    }

    #[test]
    fn overflow_fallback_stays_exact() {
        // Tiny tile: guaranteed overflow in populated voxels; the global
        // fallback must keep the results identical.
        compare_kernels(2);
    }
}
