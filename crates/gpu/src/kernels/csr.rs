//! CSR counting-sort grid kernels — GPU version IV (post-paper).
//!
//! The paper's device grid (Fig. 5 ported to the GPU) threads a linked
//! list through the agents: every candidate visit in the mechanical
//! kernel chases a `successors` pointer, a dependent random access the
//! coalescer can do nothing with. Version IV replaces the lists with the
//! CSR layout the CPU path gained in `bdm_grid::CsrGrid`:
//!
//! 1. [`CsrCountKernel`] — one thread per agent: histogram voxel
//!    populations (`atomicAdd`);
//! 2. host-side exclusive prefix sum of the counts (a grid-wide
//!    dependency — per-block barriers cannot order it, so the pipeline
//!    reads the counts back and pays the PCIe round trip, exactly like
//!    version III pays for its occupancy readback);
//! 3. [`CsrScatterKernel`] — one thread per agent: reserve a slot in the
//!    agent's voxel segment (`atomicAdd` on a cursor pre-loaded with the
//!    scanned offsets) and store the agent id into the contiguous
//!    `cell_agents` array. Once every agent is placed, `cursor[v]` has
//!    advanced to the *end* offset of voxel `v` — the cursor becomes the
//!    CSR bounds array for free, no second upload;
//! 4. [`MechCsrKernel`] — the force kernel streams `cell_agents` slices
//!    instead of chasing pointers. The 27-voxel stencil collapses to ≤ 9
//!    x-runs ([`GridGeom::x_runs_of`]): two boundary loads per run (≤ 18
//!    total, vs 27 list heads), then a sequential walk whose loads from
//!    adjacent lanes land in the same 128-byte segments.
//!
//! The build costs one extra kernel launch and the scan round trip; the
//! force kernel — where the step's memory traffic lives — gets strictly
//! streaming candidate fetches in exchange.

use crate::engine::{Kernel, ThreadCtx, ThreadId};
use crate::kernels::geom::GridGeom;
use crate::kernels::mech::{accumulate_candidate, store_displacement};
use crate::mem::{DeviceBuffer, DeviceWord};
use bdm_math::interaction::MechParams;
use bdm_math::{Scalar, Vec3};

/// Pass 1: per-voxel population histogram.
pub struct CsrCountKernel<'a, R: Scalar + DeviceWord> {
    /// Number of agents.
    pub n: usize,
    /// Grid geometry.
    pub geom: GridGeom<R>,
    /// Agent positions (SoA columns).
    pub pos_x: &'a DeviceBuffer<R>,
    /// Y coordinates.
    pub pos_y: &'a DeviceBuffer<R>,
    /// Z coordinates.
    pub pos_z: &'a DeviceBuffer<R>,
    /// Per-voxel population (pre-zeroed).
    pub counts: &'a DeviceBuffer<u32>,
}

impl<R: Scalar + DeviceWord> Kernel for CsrCountKernel<'_, R> {
    fn thread(&self, _phase: usize, tid: ThreadId, ctx: &mut ThreadCtx<'_>) {
        let i = tid.global() as usize;
        if i >= self.n {
            return;
        }
        let p = Vec3::new(
            ctx.ld(self.pos_x, i),
            ctx.ld(self.pos_y, i),
            ctx.ld(self.pos_z, i),
        );
        // Voxel index: 3 subs, 3 divs/floors, clamps ≈ 12 integer/address ops.
        ctx.iops(12);
        let b = self.geom.box_index(p);
        ctx.atomic_add(self.counts, b, 1);
    }
}

/// Pass 2: scatter agent ids into the contiguous `cell_agents` array.
///
/// Recomputes the voxel index from the (L2-warm) position columns rather
/// than staging it in a per-agent side array — the index math is a dozen
/// integer ops against three coalesced loads, cheaper than a cold
/// store/load round trip through an extra `n`-word buffer.
pub struct CsrScatterKernel<'a, R: Scalar + DeviceWord> {
    /// Number of agents.
    pub n: usize,
    /// Grid geometry.
    pub geom: GridGeom<R>,
    /// Agent positions (SoA columns).
    pub pos_x: &'a DeviceBuffer<R>,
    /// Y coordinates.
    pub pos_y: &'a DeviceBuffer<R>,
    /// Z coordinates.
    pub pos_z: &'a DeviceBuffer<R>,
    /// Per-voxel write cursor, pre-loaded with the exclusive-scan
    /// offsets; left holding the voxel *end* offsets when the pass
    /// completes.
    pub cursor: &'a DeviceBuffer<u32>,
    /// CSR payload: agent ids grouped by voxel.
    pub cell_agents: &'a DeviceBuffer<u32>,
}

impl<R: Scalar + DeviceWord> Kernel for CsrScatterKernel<'_, R> {
    fn thread(&self, _phase: usize, tid: ThreadId, ctx: &mut ThreadCtx<'_>) {
        let i = tid.global() as usize;
        if i >= self.n {
            return;
        }
        let p = Vec3::new(
            ctx.ld(self.pos_x, i),
            ctx.ld(self.pos_y, i),
            ctx.ld(self.pos_z, i),
        );
        ctx.iops(12);
        let v = self.geom.box_index(p);
        let slot = ctx.atomic_add(self.cursor, v, 1) as usize;
        ctx.iops(2);
        ctx.st(self.cell_agents, slot, i as u32);
    }
}

/// Version IV force kernel: one thread per cell, candidates streamed
/// from CSR slices.
pub struct MechCsrKernel<'a, R: Scalar + DeviceWord> {
    /// Number of cells.
    pub n: usize,
    /// Grid geometry.
    pub geom: GridGeom<R>,
    /// Cell positions.
    pub pos_x: &'a DeviceBuffer<R>,
    /// Y coordinates.
    pub pos_y: &'a DeviceBuffer<R>,
    /// Z coordinates.
    pub pos_z: &'a DeviceBuffer<R>,
    /// Cell diameters.
    pub diameter: &'a DeviceBuffer<R>,
    /// Cell adherence thresholds.
    pub adherence: &'a DeviceBuffer<R>,
    /// Per-voxel segment *end* offsets (the post-scatter cursor):
    /// voxel `v` owns `cell_agents[ends[v-1]..ends[v]]`, with an
    /// implicit 0 before voxel 0.
    pub cell_ends: &'a DeviceBuffer<u32>,
    /// CSR payload: agent ids grouped by voxel.
    pub cell_agents: &'a DeviceBuffer<u32>,
    /// Output displacements.
    pub out_x: &'a DeviceBuffer<R>,
    /// Output displacements (y).
    pub out_y: &'a DeviceBuffer<R>,
    /// Output displacements (z).
    pub out_z: &'a DeviceBuffer<R>,
    /// Interaction parameters.
    pub params: MechParams<R>,
}

impl<R: Scalar + DeviceWord> Kernel for MechCsrKernel<'_, R> {
    fn thread(&self, _phase: usize, tid: ThreadId, ctx: &mut ThreadCtx<'_>) {
        let i = tid.global() as usize;
        if i >= self.n {
            return;
        }
        let p1 = Vec3::new(
            ctx.ld(self.pos_x, i),
            ctx.ld(self.pos_y, i),
            ctx.ld(self.pos_z, i),
        );
        let r1 = ctx.ld(self.diameter, i) * R::HALF;
        let adh = ctx.ld(self.adherence, i);
        ctx.flops::<R>(1);
        ctx.iops(12);

        let mut runs = [(0usize, 0u32); 9];
        let nr = self.geom.x_runs_of(self.geom.box_coords(p1), &mut runs);
        let mut force = Vec3::zero();
        for &(first, len) in runs.iter().take(nr) {
            ctx.iops(2);
            let lo = if first == 0 {
                0
            } else {
                ctx.ld(self.cell_ends, first - 1) as usize
            };
            let hi = ctx.ld(self.cell_ends, first + len as usize - 1) as usize;
            for k in lo..hi {
                ctx.begin_slot();
                let j = ctx.ld(self.cell_agents, k) as usize;
                ctx.iops(1);
                if j != i {
                    let p2 = Vec3::new(
                        ctx.ld(self.pos_x, j),
                        ctx.ld(self.pos_y, j),
                        ctx.ld(self.pos_z, j),
                    );
                    let r2 = ctx.ld(self.diameter, j) * R::HALF;
                    ctx.flops::<R>(1);
                    accumulate_candidate(ctx, p1, r1, p2, r2, &self.params, &mut force);
                }
            }
        }
        store_displacement(
            ctx,
            self.out_x,
            self.out_y,
            self.out_z,
            i,
            force,
            adh,
            &self.params,
        );
    }
}

/// Host-side exclusive prefix sum of the downloaded counts — the scan
/// between the two build passes. Returns `counts.len() + 1` offsets.
pub fn exclusive_scan(counts: &[u32]) -> Vec<u32> {
    let mut starts = Vec::new();
    exclusive_scan_into(counts, &mut starts);
    starts
}

/// [`exclusive_scan`] into a caller-owned buffer, so the per-step scan of
/// a pipeline that keeps its scratch resident allocates nothing in steady
/// state.
pub fn exclusive_scan_into(counts: &[u32], starts: &mut Vec<u32>) {
    starts.clear();
    starts.reserve(counts.len() + 1);
    let mut acc = 0u32;
    starts.push(0);
    for &c in counts {
        acc += c;
        starts.push(acc);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{GpuDevice, LaunchConfig};
    use crate::mem::DeviceAllocator;
    use bdm_device::specs::SYSTEM_A;
    use bdm_grid::CsrGrid;
    use bdm_math::interaction;
    use bdm_math::{Aabb, SplitMix64};

    type SceneCols = (Vec<f64>, Vec<f64>, Vec<f64>);

    fn scene(n: usize, extent: f64, seed: u64) -> SceneCols {
        let mut rng = SplitMix64::new(seed);
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        let zs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        (xs, ys, zs)
    }

    /// The two-pass device build + host scan reproduces the host
    /// `CsrGrid` voxel-for-voxel (as sets — the device scatter order
    /// within a voxel depends on atomic arrival order, not stability),
    /// and the cursor finishes as the end-offset array.
    #[test]
    fn device_csr_build_matches_host_csr() {
        let n = 500;
        let extent = 9.0;
        let (xs, ys, zs) = scene(n, extent, 11);
        let space = Aabb::new(Vec3::zero(), Vec3::splat(extent));
        let box_len = 1.1;
        let host = CsrGrid::build_serial(&xs, &ys, &zs, space, box_len);

        let geom = GridGeom::<f64> {
            dims: host.dims(),
            min: space.min,
            box_len,
        };
        let num_boxes = geom.num_boxes();
        let mut alloc = DeviceAllocator::new();
        let px = alloc.alloc::<f64>(n);
        let py = alloc.alloc::<f64>(n);
        let pz = alloc.alloc::<f64>(n);
        px.upload(&xs);
        py.upload(&ys);
        pz.upload(&zs);
        let counts = alloc.alloc::<u32>(num_boxes);
        let cursor = alloc.alloc::<u32>(num_boxes);
        let cell_agents = alloc.alloc::<u32>(n);

        let dev = GpuDevice::new(SYSTEM_A.gpu);
        dev.launch(
            &CsrCountKernel {
                n,
                geom,
                pos_x: &px,
                pos_y: &py,
                pos_z: &pz,
                counts: &counts,
            },
            LaunchConfig::for_items(n, 128),
        );
        let mut host_counts = vec![0u32; num_boxes];
        counts.download(&mut host_counts);
        let starts = exclusive_scan(&host_counts);
        cursor.upload(&starts[..num_boxes]);
        dev.launch(
            &CsrScatterKernel {
                n,
                geom,
                pos_x: &px,
                pos_y: &py,
                pos_z: &pz,
                cursor: &cursor,
                cell_agents: &cell_agents,
            },
            LaunchConfig::for_items(n, 128),
        );

        assert_eq!(starts, host.cell_starts());
        // The exhausted cursor is the end-offset array the force kernel
        // reads.
        let mut ends = vec![0u32; num_boxes];
        cursor.download(&mut ends);
        assert_eq!(ends, &host.cell_starts()[1..]);

        let mut got = vec![0u32; n];
        cell_agents.download(&mut got);
        for b in 0..num_boxes {
            let (lo, hi) = (starts[b] as usize, starts[b + 1] as usize);
            let mut dev_ids: Vec<u32> = got[lo..hi].to_vec();
            dev_ids.sort_unstable();
            let mut host_ids: Vec<u32> = host.cell_range(b).iter().map(|id| id.0).collect();
            host_ids.sort_unstable();
            assert_eq!(dev_ids, host_ids, "voxel {b}");
        }
    }

    /// The CSR force kernel reproduces a direct host computation.
    #[test]
    fn csr_forces_match_host_reference() {
        let n = 400;
        let extent = 10.0;
        let radius = 0.6;
        let (xs, ys, zs) = scene(n, extent, 33);
        let diam = vec![2.0 * radius; n];
        let adh = vec![0.01; n];
        let params = MechParams::<f64>::default_params();
        let space = Aabb::new(Vec3::zero(), Vec3::splat(extent));
        let box_len = 2.0 * radius;
        let host = CsrGrid::build_serial(&xs, &ys, &zs, space, box_len);
        let geom = GridGeom::<f64> {
            dims: host.dims(),
            min: space.min,
            box_len,
        };
        let num_boxes = geom.num_boxes();

        let mut alloc = DeviceAllocator::new();
        let px = alloc.alloc::<f64>(n);
        let py = alloc.alloc::<f64>(n);
        let pz = alloc.alloc::<f64>(n);
        let d = alloc.alloc::<f64>(n);
        let a = alloc.alloc::<f64>(n);
        px.upload(&xs);
        py.upload(&ys);
        pz.upload(&zs);
        d.upload(&diam);
        a.upload(&adh);
        // CSR uploaded directly from the host grid — the build kernels
        // have their own test above.
        let cell_ends = alloc.alloc::<u32>(num_boxes);
        let cell_agents = alloc.alloc::<u32>(n);
        cell_ends.upload(&host.cell_starts()[1..]);
        let ids: Vec<u32> = host.cell_agents().iter().map(|id| id.0).collect();
        cell_agents.upload(&ids);
        let ox = alloc.alloc::<f64>(n);
        let oy = alloc.alloc::<f64>(n);
        let oz = alloc.alloc::<f64>(n);

        let dev = GpuDevice::new(SYSTEM_A.gpu);
        let r = dev.launch(
            &MechCsrKernel {
                n,
                geom,
                pos_x: &px,
                pos_y: &py,
                pos_z: &pz,
                diameter: &d,
                adherence: &a,
                cell_ends: &cell_ends,
                cell_agents: &cell_agents,
                out_x: &ox,
                out_y: &oy,
                out_z: &oz,
                params,
            },
            LaunchConfig::for_items(n, 128),
        );
        assert!(r.counters.flops_fp64 > 0.0);

        let mut got_x = vec![0.0; n];
        let mut got_y = vec![0.0; n];
        let mut got_z = vec![0.0; n];
        ox.download(&mut got_x);
        oy.download(&mut got_y);
        oz.download(&mut got_z);

        for i in 0..n {
            let p1 = Vec3::new(xs[i], ys[i], zs[i]);
            let mut force = Vec3::zero();
            let mut ids = Vec::new();
            host.radius_search(
                &xs,
                &ys,
                &zs,
                p1,
                box_len,
                Some(bdm_soa::AgentId(i as u32)),
                &mut ids,
            );
            ids.sort_unstable();
            for id in ids {
                let j = id.index();
                if let Some(f) = interaction::collision_force(
                    p1,
                    radius,
                    Vec3::new(xs[j], ys[j], zs[j]),
                    radius,
                    params.repulsion,
                    params.attraction,
                ) {
                    force += f;
                }
            }
            let disp = interaction::displacement(force, adh[i], &params);
            assert!(
                (disp.x - got_x[i]).abs() < 1e-9
                    && (disp.y - got_y[i]).abs() < 1e-9
                    && (disp.z - got_z[i]).abs() < 1e-9,
                "cell {i}: host {disp:?} vs device ({}, {}, {})",
                got_x[i],
                got_y[i],
                got_z[i]
            );
        }
    }

    #[test]
    fn exclusive_scan_offsets() {
        assert_eq!(exclusive_scan(&[]), vec![0]);
        assert_eq!(exclusive_scan(&[3, 0, 2]), vec![0, 3, 3, 5]);
    }
}
