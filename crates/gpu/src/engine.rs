//! The SIMT execution engine.
//!
//! A launch executes `grid_dim` blocks of `block_dim` threads. Threads run
//! in warps of 32 lanes; within a warp the timing model is lockstep: the
//! warp's compute cost is the *slowest lane's* cost (that max **is** the
//! SIMT divergence model — when one lane's neighbor loop runs long, its 31
//! siblings wait, which is exactly the serial-neighbor-loop bottleneck the
//! paper observes at high densities, Fig. 11).
//!
//! Memory modeling happens at warp granularity on a sampled subset of
//! warps (deterministic stride sampling; the default full-trace is used by
//! tests, benchmarks sample to bound simulation time):
//!
//! * Lane accesses are aligned by *slot* (the i-th access of each lane —
//!   the SIMT analogue of "the same static instruction").
//! * Per slot, the distinct 128-byte segments touched by the warp become
//!   **coalesced transactions**; each transaction probes the simulated L2
//!   (`bdm_device::ShardedCache`), misses become DRAM traffic.
//! * Atomic operations to the same address within a slot serialize and
//!   are charged extra warp cycles.
//!
//! Execution is sequential and fully deterministic: identical inputs give
//! identical counters, which the tests rely on.

use crate::counters::KernelCounters;
use crate::mem::{DeviceBuffer, DeviceWord};
use crate::timing::KernelTiming;
use bdm_device::cache::ShardedCache;
use bdm_device::specs::GpuSpec;
use bdm_math::Scalar;
use std::sync::atomic::{AtomicU64, Ordering};

/// Extra warp cycles when two atomics in the same slot hit one address.
const ATOMIC_SERIAL_CYCLES: f64 = 32.0;
/// Base issue cost of a shared-memory access (cycles, per lane).
const SHARED_ACCESS_CYCLES: f64 = 1.0;
/// Base issue cost of a shared-memory atomic (cycles, per lane).
const SHARED_ATOMIC_CYCLES: f64 = 10.0;
/// Per-lane issue cost of a global access (cycles); the transaction-level
/// cost is added at the warp level by the coalescer.
const GLOBAL_ACCESS_LANE_CYCLES: f64 = 0.25;
/// Issue-cycle multiplier for `sqrt`/division (SFU/iterative ops).
const SPECIAL_OP_CYCLES: f64 = 8.0;

/// Launch geometry.
#[derive(Debug, Clone, Copy)]
pub struct LaunchConfig {
    /// Number of blocks (CUDA grid dimension / OpenCL work-group count).
    pub grid_dim: u32,
    /// Threads per block (CUDA block dimension / OpenCL work-group size).
    pub block_dim: u32,
    /// Shared-memory words (8 bytes each) per block.
    pub shared_words: usize,
}

impl LaunchConfig {
    /// One thread per work item, 256-thread blocks (the launch shape the
    /// paper's one-thread-per-cell kernels use).
    pub fn for_items(items: usize, block_dim: u32) -> Self {
        let items = items.max(1) as u64;
        let grid_dim = items.div_ceil(block_dim as u64) as u32;
        Self {
            grid_dim,
            block_dim,
            shared_words: 0,
        }
    }

    /// Total threads launched.
    pub fn total_threads(&self) -> u64 {
        self.grid_dim as u64 * self.block_dim as u64
    }
}

/// Identity of the executing thread.
#[derive(Debug, Clone, Copy)]
pub struct ThreadId {
    /// Block index within the grid.
    pub block: u32,
    /// Thread index within the block.
    pub thread: u32,
    /// Block size (for global-id computation).
    pub block_dim: u32,
    /// Grid size in blocks.
    pub grid_dim: u32,
}

impl ThreadId {
    /// Flat global thread id (`blockIdx.x * blockDim.x + threadIdx.x`).
    #[inline(always)]
    pub fn global(&self) -> u64 {
        self.block as u64 * self.block_dim as u64 + self.thread as u64
    }
}

/// A device kernel. Block-wide barriers are expressed as *phases*: the
/// engine runs every thread of a block through phase 0, then phase 1, …
/// — semantically `__syncthreads()` between consecutive phases.
pub trait Kernel {
    /// Number of barrier-separated phases (default 1 = no barrier).
    fn phases(&self) -> usize {
        1
    }
    /// Execute one thread's work for one phase.
    fn thread(&self, phase: usize, tid: ThreadId, ctx: &mut ThreadCtx<'_>);
}

/// Per-block shared memory: 8-byte words, atomically accessed.
pub struct BlockShared {
    words: Vec<AtomicU64>,
}

impl BlockShared {
    fn new(words: usize) -> Self {
        Self {
            words: (0..words).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    #[inline(always)]
    fn load(&self, i: usize) -> u64 {
        self.words[i].load(Ordering::Relaxed)
    }

    #[inline(always)]
    fn store(&self, i: usize, v: u64) {
        self.words[i].store(v, Ordering::Relaxed)
    }

    #[inline(always)]
    fn fetch_add_u32(&self, i: usize, v: u32) -> u32 {
        self.words[i].fetch_add(v as u64, Ordering::AcqRel) as u32
    }
}

/// One global-memory access in a lane's trace, tagged with its *slot
/// key*: (loop iteration << 8) | intra-iteration index. Lanes of a warp
/// executing the same static load in the same loop iteration share a
/// slot key — the coalescer merges exactly those accesses, like real
/// SIMT hardware merges the lanes of one memory instruction.
#[derive(Debug, Clone, Copy)]
struct Access {
    key: u32,
    addr: u64,
    atomic: bool,
}

/// Per-lane execution record, reused across lanes.
#[derive(Debug, Default)]
struct LaneRecord {
    active: bool,
    cycles: f64,
    flops32: f64,
    flops64: f64,
    accesses: Vec<Access>,
    shared_accesses: u64,
    shared_atomics: Vec<u64>,
}

impl LaneRecord {
    fn reset(&mut self) {
        self.active = false;
        self.cycles = 0.0;
        self.flops32 = 0.0;
        self.flops64 = 0.0;
        self.accesses.clear();
        self.shared_accesses = 0;
        self.shared_atomics.clear();
    }
}

/// The per-thread execution context handed to kernels. All device-visible
/// work must go through it so the performance model sees it.
pub struct ThreadCtx<'a> {
    shared: &'a BlockShared,
    lane: &'a mut LaneRecord,
    traced: bool,
    fp64_cost: f64,
    /// Current slot (loop iteration) of this lane.
    slot: u32,
    /// Access index within the current slot.
    sub: u32,
    /// Child launches requested via dynamic parallelism in this thread.
    pub(crate) child_launches: u64,
}

impl<'a> ThreadCtx<'a> {
    /// Count `n` fused-multiply-add-class FLOPs at precision `R`
    /// (1 FLOP = half an issue cycle at FP32; FP64 pays the device ratio).
    #[inline(always)]
    pub fn flops<R: Scalar>(&mut self, n: u32) {
        let n = n as f64;
        if R::IS_F64 {
            self.lane.flops64 += n;
            self.lane.cycles += 0.5 * n * self.fp64_cost;
        } else {
            self.lane.flops32 += n;
            self.lane.cycles += 0.5 * n;
        }
    }

    /// Count `n` special-function ops (`sqrt`, division): 1 FLOP each for
    /// roofline purposes, several issue cycles each for timing.
    #[inline(always)]
    pub fn special<R: Scalar>(&mut self, n: u32) {
        let n = n as f64;
        if R::IS_F64 {
            self.lane.flops64 += n;
            self.lane.cycles += SPECIAL_OP_CYCLES * n * self.fp64_cost;
        } else {
            self.lane.flops32 += n;
            self.lane.cycles += SPECIAL_OP_CYCLES * n;
        }
    }

    /// Count `n` integer/address ops (1 issue cycle per 2, like FP32; not
    /// part of the FLOP totals).
    #[inline(always)]
    pub fn iops(&mut self, n: u32) {
        self.lane.cycles += 0.5 * n as f64;
    }

    /// Global load.
    #[inline(always)]
    pub fn ld<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, i: usize) -> T {
        self.log_access(buf.addr(i), false);
        buf.read(i)
    }

    /// Global store.
    #[inline(always)]
    pub fn st<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, i: usize, v: T) {
        self.log_access(buf.addr(i), false);
        buf.write(i, v);
    }

    /// Global atomic exchange.
    #[inline(always)]
    pub fn atomic_exchange<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, i: usize, v: T) -> T {
        self.log_access(buf.addr(i), true);
        buf.atomic_exchange(i, v)
    }

    /// Global atomic add.
    #[inline(always)]
    pub fn atomic_add<T: DeviceWord>(&mut self, buf: &DeviceBuffer<T>, i: usize, v: T) -> T {
        self.log_access(buf.addr(i), true);
        buf.atomic_add(i, v)
    }

    /// Mark the start of a data-dependent loop iteration. Calling this at
    /// the top of a per-candidate loop keeps lanes' accesses *slot
    /// aligned* even when lanes skip work (e.g. the self-exclusion test):
    /// real warps re-converge at the loop head the same way.
    #[inline(always)]
    pub fn begin_slot(&mut self) {
        self.slot += 1;
        self.sub = 0;
    }

    #[inline(always)]
    fn log_access(&mut self, addr: u64, atomic: bool) {
        self.lane.cycles += GLOBAL_ACCESS_LANE_CYCLES;
        if self.traced {
            let key = (self.slot << 8) | self.sub.min(255);
            self.sub += 1;
            self.lane.accesses.push(Access { key, addr, atomic });
        }
    }

    /// Shared-memory load of word `i` reinterpreted as `T`.
    #[inline(always)]
    pub fn sh_ld<T: FromWord>(&mut self, i: usize) -> T {
        self.lane.cycles += SHARED_ACCESS_CYCLES;
        self.lane.shared_accesses += 1;
        T::from_word(self.shared.load(i))
    }

    /// Shared-memory store of word `i`.
    #[inline(always)]
    pub fn sh_st<T: FromWord>(&mut self, i: usize, v: T) {
        self.lane.cycles += SHARED_ACCESS_CYCLES;
        self.lane.shared_accesses += 1;
        self.shared.store(i, T::to_word(v));
    }

    /// Shared-memory atomic add on a `u32` counter word (the tile-append
    /// cursor of the paper's shared-memory kernel). Returns the old value.
    #[inline(always)]
    pub fn sh_atomic_add_u32(&mut self, i: usize, v: u32) -> u32 {
        self.lane.cycles += SHARED_ATOMIC_CYCLES;
        self.lane.shared_accesses += 1;
        if self.traced {
            self.lane.shared_atomics.push(i as u64);
        }
        self.shared.fetch_add_u32(i, v)
    }

    /// Dynamic parallelism: record a child launch (the engine charges its
    /// overhead; the caller runs the child work inline).
    #[inline(always)]
    pub fn launch_child(&mut self) {
        self.child_launches += 1;
    }
}

/// Conversion between shared-memory 8-byte words and device scalars.
pub trait FromWord: DeviceWord {
    /// Reinterpret a word as `Self`.
    fn from_word(w: u64) -> Self;
    /// Reinterpret `Self` as a word.
    fn to_word(v: Self) -> u64;
}

impl FromWord for u32 {
    fn from_word(w: u64) -> u32 {
        w as u32
    }
    fn to_word(v: u32) -> u64 {
        v as u64
    }
}

impl FromWord for f32 {
    fn from_word(w: u64) -> f32 {
        f32::from_bits(w as u32)
    }
    fn to_word(v: f32) -> u64 {
        v.to_bits() as u64
    }
}

impl FromWord for f64 {
    fn from_word(w: u64) -> f64 {
        f64::from_bits(w)
    }
    fn to_word(v: f64) -> u64 {
        v.to_bits()
    }
}

/// Result of a kernel launch: counters plus modeled timing.
#[derive(Debug, Clone)]
pub struct LaunchResult {
    /// Performance counters (the `nvprof` stand-in).
    pub counters: KernelCounters,
    /// Modeled execution time on the device.
    pub timing: KernelTiming,
}

/// The simulated device: a spec, a live L2 model, and trace configuration.
pub struct GpuDevice {
    spec: GpuSpec,
    l2: ShardedCache,
    /// Trace every `trace_sample`-th warp (1 = all warps).
    trace_sample: u64,
}

impl GpuDevice {
    /// Device with full warp tracing (tests, small launches).
    pub fn new(spec: GpuSpec) -> Self {
        Self::with_trace_sampling(spec, 1)
    }

    /// Device tracing every `sample`-th warp (large benchmark launches;
    /// the traced subset is scaled up, see [`KernelCounters`]).
    ///
    /// Cache **set sampling**: tracing 1/k of the warps sends 1/k of the
    /// traffic through the L2 model, which would compress reuse
    /// distances k-fold and inflate hit rates. Scaling the simulated
    /// capacity by 1/k restores the capacity-to-traffic ratio — the
    /// standard set-sampling argument from trace-driven cache
    /// simulation.
    pub fn with_trace_sampling(spec: GpuSpec, sample: u64) -> Self {
        let sample = sample.max(1);
        let capacity =
            (spec.l2_bytes / sample).max(spec.l2_line_bytes as u64 * spec.l2_ways as u64 * 16);
        let l2 = ShardedCache::new(capacity, spec.l2_ways, spec.l2_line_bytes, 16);
        Self {
            spec,
            l2,
            trace_sample: sample,
        }
    }

    /// The device spec.
    pub fn spec(&self) -> &GpuSpec {
        &self.spec
    }

    /// Current warp trace stride.
    pub fn trace_sample(&self) -> u64 {
        self.trace_sample
    }

    /// Invalidate the simulated L2 (e.g. between independent experiments).
    pub fn reset_l2(&self) {
        self.l2.reset();
    }

    /// Execute a kernel launch and return counters + modeled timing.
    pub fn launch<K: Kernel>(&self, kernel: &K, cfg: LaunchConfig) -> LaunchResult {
        assert!(cfg.block_dim > 0 && cfg.grid_dim > 0, "empty launch");
        assert!(
            cfg.shared_words * 8 <= self.spec.shared_mem_per_sm as usize,
            "shared memory request exceeds the device's {} bytes per SM",
            self.spec.shared_mem_per_sm
        );
        let mut counters = KernelCounters::default();
        let phases = kernel.phases();
        let warps_per_block = cfg.block_dim.div_ceil(self.spec.warp_size) as u64;
        let fp64_cost = self.spec.fp64_ratio();

        // Occupancy: how many blocks fit one SM, limited by the thread
        // budget and by shared memory. Drives both the latency-hiding
        // penalty (timing) and the width of the L2 interleaving batch.
        let resident_blocks = {
            let by_threads = (self.spec.max_threads_per_sm / cfg.block_dim).max(1);
            let by_shared = if cfg.shared_words > 0 {
                (self.spec.shared_mem_per_sm as usize / (cfg.shared_words * 8)).max(1) as u32
            } else {
                u32::MAX
            };
            by_threads.min(by_shared).min(32)
        };
        counters.occupancy_warps_per_sm = (resident_blocks as u64 * warps_per_block) as f64;

        // The device runs `sm_count × resident_blocks × warps_per_block`
        // warps concurrently; their memory streams interleave at the L2.
        // A sequential warp-by-warp simulation would see artificially
        // perfect temporal locality, so traced warps are buffered and
        // their transactions drained round-robin per slot across a batch
        // of this width (scaled down by the trace sampling stride).
        let resident_warps = self.spec.sm_count as u64 * resident_blocks as u64 * warps_per_block;
        let batch_width = (resident_warps / self.trace_sample).max(1) as usize;
        let mut batch: Vec<Vec<(u32, Vec<u64>)>> = Vec::new();

        let mut lanes: Vec<LaneRecord> = (0..self.spec.warp_size)
            .map(|_| LaneRecord::default())
            .collect();

        for block in 0..cfg.grid_dim {
            let shared = BlockShared::new(cfg.shared_words);
            for phase in 0..phases {
                if phase > 0 {
                    counters.barriers += 1;
                }
                for warp in 0..warps_per_block {
                    let warp_id = block as u64 * warps_per_block + warp;
                    let traced = warp_id.is_multiple_of(self.trace_sample);
                    let warp_base = warp as u32 * self.spec.warp_size;

                    for (l, lane) in lanes.iter_mut().enumerate() {
                        lane.reset();
                        let thread = warp_base + l as u32;
                        if thread >= cfg.block_dim {
                            continue;
                        }
                        lane.active = true;
                        let tid = ThreadId {
                            block,
                            thread,
                            block_dim: cfg.block_dim,
                            grid_dim: cfg.grid_dim,
                        };
                        let mut ctx = ThreadCtx {
                            shared: &shared,
                            lane,
                            traced,
                            fp64_cost,
                            slot: 0,
                            sub: 0,
                            child_launches: 0,
                        };
                        kernel.thread(phase, tid, &mut ctx);
                        counters.child_launches += ctx.child_launches;
                    }

                    self.retire_warp(&lanes, traced, phase == 0, &mut counters, &mut batch);
                    if batch.len() >= batch_width {
                        self.drain_batch(&mut batch, &mut counters);
                    }
                }
            }
        }
        self.drain_batch(&mut batch, &mut counters);

        counters.finalize_scaling();
        let timing = KernelTiming::model(&counters, &self.spec);
        LaunchResult { counters, timing }
    }

    /// Aggregate a warp's lane records into the launch counters and, for
    /// traced warps, stage the coalesced transactions into the batch.
    fn retire_warp(
        &self,
        lanes: &[LaneRecord],
        traced: bool,
        count_threads: bool,
        counters: &mut KernelCounters,
        batch: &mut Vec<Vec<(u32, Vec<u64>)>>,
    ) {
        let mut max_cycles = 0.0f64;
        let mut any_active = false;
        for lane in lanes {
            if !lane.active {
                continue;
            }
            any_active = true;
            if count_threads {
                counters.threads_run += 1;
            }
            counters.flops_fp32 += lane.flops32;
            counters.flops_fp64 += lane.flops64;
            counters.shared_accesses += lane.shared_accesses as f64;
            counters.lane_cycles_total += lane.cycles;
            max_cycles = max_cycles.max(lane.cycles);
        }
        if !any_active {
            return;
        }
        if count_threads {
            counters.warps_run += 1;
        }
        counters.compute_warp_cycles += max_cycles;

        if !traced {
            return;
        }
        if count_threads {
            counters.warps_traced += 1;
        }

        // Slot-keyed coalescing: lanes' accesses sharing a slot key merge
        // into transactions (distinct 128-byte segments).
        let line = self.spec.l2_line_bytes as u64;
        let mut slots: std::collections::BTreeMap<u32, (Vec<u64>, Vec<u64>)> =
            std::collections::BTreeMap::new();
        for lane in lanes {
            for a in &lane.accesses {
                let entry = slots.entry(a.key).or_default();
                let seg = a.addr / line;
                if !entry.0.contains(&seg) {
                    entry.0.push(seg);
                }
                if a.atomic {
                    counters.atomic_ops += 1.0;
                    entry.1.push(a.addr);
                }
            }
        }
        let mut warp_txns: Vec<(u32, Vec<u64>)> = Vec::with_capacity(slots.len());
        for (key, (segs, mut atomic_addrs)) in slots {
            // Atomics to one address within a slot serialize.
            if atomic_addrs.len() > 1 {
                atomic_addrs.sort_unstable();
                counters.atomic_serial_cycles +=
                    conflict_cycles(&atomic_addrs) * ATOMIC_SERIAL_CYCLES;
            }
            warp_txns.push((key, segs));
        }
        batch.push(warp_txns);

        // Shared-memory atomic conflicts, slot-aligned by per-lane order.
        let max_sh = lanes
            .iter()
            .map(|l| l.shared_atomics.len())
            .max()
            .unwrap_or(0);
        let mut sh_addrs: Vec<u64> = Vec::with_capacity(32);
        for slot in 0..max_sh {
            sh_addrs.clear();
            for lane in lanes {
                if let Some(&w) = lane.shared_atomics.get(slot) {
                    sh_addrs.push(w);
                }
            }
            if sh_addrs.len() > 1 {
                sh_addrs.sort_unstable();
                counters.atomic_serial_cycles += conflict_cycles(&sh_addrs) * ATOMIC_SERIAL_CYCLES;
            }
        }
    }

    /// Drain the traced-warp batch: interleave all warps' transactions
    /// round-robin by slot key (modeling concurrent residency) and run
    /// them through the L2 model.
    fn drain_batch(&self, batch: &mut Vec<Vec<(u32, Vec<u64>)>>, counters: &mut KernelCounters) {
        if batch.is_empty() {
            return;
        }
        let line = self.spec.l2_line_bytes as u64;
        // (key, warp index, slot index within warp) orders the merged
        // stream: all warps' slot-0 transactions, then slot-1, …
        let mut order: Vec<(u32, usize, usize)> = Vec::new();
        for (w, warp) in batch.iter().enumerate() {
            for (k, (key, _)) in warp.iter().enumerate() {
                order.push((*key, w, k));
            }
        }
        order.sort_unstable();
        for (_, w, k) in order {
            for &seg in &batch[w][k].1 {
                counters.global_transactions += 1.0;
                match self.l2.access(seg * line) {
                    bdm_device::AccessOutcome::Hit => counters.l2_hits += 1.0,
                    bdm_device::AccessOutcome::Miss => counters.l2_misses += 1.0,
                }
            }
        }
        batch.clear();
    }
}

/// Serialization count of a sorted address list: Σ over duplicate runs of
/// (run length − 1).
fn conflict_cycles(sorted_addrs: &[u64]) -> f64 {
    let mut extra = 0u64;
    let mut run = 1u64;
    for w in sorted_addrs.windows(2) {
        if w[0] == w[1] {
            run += 1;
        } else {
            extra += run - 1;
            run = 1;
        }
    }
    extra += run - 1;
    extra as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::DeviceAllocator;
    use bdm_device::specs::SYSTEM_A;

    /// y[i] = a*x[i] + y[i] — the classic saxpy, exercising loads, stores
    /// and FLOPs.
    struct Saxpy {
        n: usize,
        a: f32,
        x: DeviceBuffer<f32>,
        y: DeviceBuffer<f32>,
    }

    impl Kernel for Saxpy {
        fn thread(&self, _phase: usize, tid: ThreadId, ctx: &mut ThreadCtx<'_>) {
            let i = tid.global() as usize;
            if i >= self.n {
                return;
            }
            let x = ctx.ld(&self.x, i);
            let y = ctx.ld(&self.y, i);
            ctx.flops::<f32>(2);
            ctx.st(&self.y, i, self.a * x + y);
        }
    }

    fn saxpy_setup(n: usize) -> Saxpy {
        let mut alloc = DeviceAllocator::new();
        let x = alloc.alloc::<f32>(n);
        let y = alloc.alloc::<f32>(n);
        let xs: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let ys: Vec<f32> = (0..n).map(|i| 2.0 * i as f32).collect();
        x.upload(&xs);
        y.upload(&ys);
        Saxpy { n, a: 3.0, x, y }
    }

    #[test]
    fn saxpy_functional_result() {
        let k = saxpy_setup(1000);
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        dev.launch(&k, LaunchConfig::for_items(1000, 256));
        let mut out = vec![0.0f32; 1000];
        k.y.download(&mut out);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 3.0 * i as f32 + 2.0 * i as f32);
        }
    }

    #[test]
    fn saxpy_counters() {
        let n = 1024;
        let k = saxpy_setup(n);
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        let r = dev.launch(&k, LaunchConfig::for_items(n, 256));
        let c = &r.counters;
        assert_eq!(c.threads_run, n as u64);
        assert_eq!(c.warps_run, (n / 32) as u64);
        assert_eq!(c.flops_fp32, 2.0 * n as f64);
        assert_eq!(c.flops_fp64, 0.0);
        // Perfectly coalesced: 32 consecutive f32 = 128 B = 1 transaction
        // per access slot (3 slots: ld x, ld y, st y).
        assert_eq!(c.global_transactions, 3.0 * (n / 32) as f64);
        // Streaming data: virtually everything misses... except y is
        // loaded then stored — the store hits the line the load filled.
        assert_eq!(c.l2_misses, 2.0 * (n / 32) as f64);
        assert_eq!(c.l2_hits, (n / 32) as f64);
    }

    #[test]
    fn inactive_tail_threads_do_not_count() {
        let k = saxpy_setup(100); // 100 of 128 threads active in the guard
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        let r = dev.launch(&k, LaunchConfig::for_items(100, 128));
        // All 128 execute (the guard returns early) but they all count as
        // run threads; FLOPs only from the 100 that passed the guard.
        assert_eq!(r.counters.threads_run, 128);
        assert_eq!(r.counters.flops_fp32, 200.0);
    }

    /// Strided access: lane l reads element l*stride — breaks coalescing.
    struct Strided {
        n: usize,
        stride: usize,
        x: DeviceBuffer<f32>,
    }

    impl Kernel for Strided {
        fn thread(&self, _phase: usize, tid: ThreadId, ctx: &mut ThreadCtx<'_>) {
            let i = tid.global() as usize * self.stride;
            if i < self.n {
                ctx.ld(&self.x, i);
            }
        }
    }

    #[test]
    fn stride_destroys_coalescing() {
        let n = 32 * 64; // one warp with stride 64 spans 64 segments
        let mut alloc = DeviceAllocator::new();
        let x = alloc.alloc::<f32>(n);
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        let contiguous = dev.launch(
            &Strided { n, stride: 1, x },
            LaunchConfig {
                grid_dim: 1,
                block_dim: 32,
                shared_words: 0,
            },
        );
        let mut alloc = DeviceAllocator::new();
        let x = alloc.alloc::<f32>(n);
        let strided = dev.launch(
            &Strided { n, stride: 64, x },
            LaunchConfig {
                grid_dim: 1,
                block_dim: 32,
                shared_words: 0,
            },
        );
        assert_eq!(contiguous.counters.global_transactions, 1.0);
        assert_eq!(strided.counters.global_transactions, 32.0);
    }

    /// All lanes atomically add to one counter: worst-case serialization.
    struct AtomicHammer {
        c: DeviceBuffer<u32>,
    }

    impl Kernel for AtomicHammer {
        fn thread(&self, _phase: usize, _tid: ThreadId, ctx: &mut ThreadCtx<'_>) {
            ctx.atomic_add(&self.c, 0, 1);
        }
    }

    #[test]
    fn atomic_conflicts_serialize_and_count() {
        let mut alloc = DeviceAllocator::new();
        let c = alloc.alloc::<u32>(1);
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        let r = dev.launch(
            &AtomicHammer { c },
            LaunchConfig {
                grid_dim: 2,
                block_dim: 32,
                shared_words: 0,
            },
        );
        // Functional: 64 increments landed.
        assert_eq!(r.counters.atomic_ops, 64.0);
        // 31 conflicts per warp × 2 warps × 32 cycles.
        assert_eq!(
            r.counters.atomic_serial_cycles,
            2.0 * 31.0 * ATOMIC_SERIAL_CYCLES
        );
    }

    /// Two phases with shared memory: phase 0 stores, phase 1 reads after
    /// the implicit barrier.
    struct SharedRoundtrip {
        out: DeviceBuffer<f32>,
    }

    impl Kernel for SharedRoundtrip {
        fn phases(&self) -> usize {
            2
        }
        fn thread(&self, phase: usize, tid: ThreadId, ctx: &mut ThreadCtx<'_>) {
            let t = tid.thread as usize;
            if phase == 0 {
                // Thread t writes word t.
                ctx.sh_st::<f32>(t, t as f32 * 2.0);
            } else {
                // Thread t reads the word its *neighbor* wrote — only
                // correct because of the barrier between phases.
                let n = (t + 1) % tid.block_dim as usize;
                let v = ctx.sh_ld::<f32>(n);
                ctx.st(&self.out, t, v);
            }
        }
    }

    #[test]
    fn phase_barrier_makes_shared_writes_visible() {
        let mut alloc = DeviceAllocator::new();
        let k = SharedRoundtrip {
            out: alloc.alloc::<f32>(64),
        };
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        let r = dev.launch(
            &k,
            LaunchConfig {
                grid_dim: 1,
                block_dim: 64,
                shared_words: 64,
            },
        );
        assert_eq!(r.counters.barriers, 1);
        assert_eq!(r.counters.shared_accesses, 128.0);
        let mut host = vec![0.0f32; 64];
        k.out.download(&mut host);
        for (t, &v) in host.iter().enumerate() {
            assert_eq!(v, ((t + 1) % 64) as f32 * 2.0);
        }
    }

    #[test]
    fn shared_atomic_conflicts_detected() {
        struct TileAppend {
            vals: DeviceBuffer<f32>,
        }
        impl Kernel for TileAppend {
            fn thread(&self, _phase: usize, tid: ThreadId, ctx: &mut ThreadCtx<'_>) {
                // Every lane bumps the same shared cursor — full conflict.
                let slot = ctx.sh_atomic_add_u32(0, 1);
                let v = ctx.ld(&self.vals, tid.global() as usize);
                ctx.sh_st::<f32>(1 + slot as usize, v);
            }
        }
        let mut alloc = DeviceAllocator::new();
        let vals = alloc.alloc::<f32>(32);
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        let r = dev.launch(
            &TileAppend { vals },
            LaunchConfig {
                grid_dim: 1,
                block_dim: 32,
                shared_words: 64,
            },
        );
        assert_eq!(r.counters.atomic_serial_cycles, 31.0 * ATOMIC_SERIAL_CYCLES);
    }

    #[test]
    fn trace_sampling_scales_counters() {
        let n = 32 * 128;
        let k = saxpy_setup(n);
        let full_dev = GpuDevice::new(SYSTEM_A.gpu);
        let full = full_dev.launch(&k, LaunchConfig::for_items(n, 32));
        let k2 = saxpy_setup(n);
        let sampled_dev = GpuDevice::with_trace_sampling(SYSTEM_A.gpu, 4);
        let sampled = sampled_dev.launch(&k2, LaunchConfig::for_items(n, 32));
        // Exact quantities match.
        assert_eq!(full.counters.flops_fp32, sampled.counters.flops_fp32);
        assert_eq!(full.counters.warps_run, sampled.counters.warps_run);
        assert_eq!(
            sampled.counters.warps_traced,
            sampled.counters.warps_run / 4
        );
        // Scaled transaction estimate lands on the exact value for this
        // homogeneous workload.
        assert!(
            (sampled.counters.global_transactions - full.counters.global_transactions).abs()
                / full.counters.global_transactions
                < 0.01
        );
    }

    #[test]
    fn determinism_across_runs() {
        let n = 4096;
        let k = saxpy_setup(n);
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        let a = dev.launch(&k, LaunchConfig::for_items(n, 256));
        dev.reset_l2();
        let b = dev.launch(&k, LaunchConfig::for_items(n, 256));
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn occupancy_reflects_shared_memory_pressure() {
        struct Nop;
        impl Kernel for Nop {
            fn thread(&self, _: usize, _: ThreadId, _: &mut ThreadCtx<'_>) {}
        }
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        // No shared memory, 256-thread blocks: thread-budget limited
        // (2048 / 256 = 8 blocks × 8 warps = 64 warps/SM).
        let free = dev.launch(
            &Nop,
            LaunchConfig {
                grid_dim: 4,
                block_dim: 256,
                shared_words: 0,
            },
        );
        assert_eq!(free.counters.occupancy_warps_per_sm, 64.0);
        // Near-max shared request: one block resident.
        let words = SYSTEM_A.gpu.shared_mem_per_sm as usize / 8 - 8;
        let tight = dev.launch(
            &Nop,
            LaunchConfig {
                grid_dim: 4,
                block_dim: 256,
                shared_words: words,
            },
        );
        assert_eq!(tight.counters.occupancy_warps_per_sm, 8.0);
    }

    #[test]
    fn low_occupancy_stretches_runtime() {
        // Identical work, but the low-occupancy launch must be modeled
        // slower (latency exposure).
        let n = 1 << 14;
        let k = saxpy_setup(n);
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        let high = dev.launch(&k, LaunchConfig::for_items(n, 256));
        dev.reset_l2();
        let k2 = saxpy_setup(n);
        let words = SYSTEM_A.gpu.shared_mem_per_sm as usize / 8 - 8;
        let low = dev.launch(
            &k2,
            LaunchConfig {
                grid_dim: (n as u32).div_ceil(64),
                block_dim: 64,
                shared_words: words, // 1 resident block of 2 warps
            },
        );
        assert!(
            low.timing.total_s > high.timing.total_s,
            "low occupancy {} should exceed high occupancy {}",
            low.timing.total_s,
            high.timing.total_s
        );
    }

    #[test]
    #[should_panic]
    fn oversized_shared_request_panics() {
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        struct Nop;
        impl Kernel for Nop {
            fn thread(&self, _: usize, _: ThreadId, _: &mut ThreadCtx<'_>) {}
        }
        dev.launch(
            &Nop,
            LaunchConfig {
                grid_dim: 1,
                block_dim: 32,
                shared_words: 1 << 20,
            },
        );
    }
}
