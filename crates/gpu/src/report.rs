//! `nvprof`-style text reports of kernel counters and timings.
//!
//! The paper reads its performance evidence off `nvprof` (§V): FLOP
//! throughput, DRAM/L2 traffic, and derived metrics. This module renders
//! the simulator's equivalent so examples and benchmark binaries can
//! print a profile a CUDA developer would recognize.

use crate::counters::KernelCounters;
use crate::timing::{KernelBound, KernelTiming};
use bdm_device::specs::GpuSpec;

/// A named kernel profile entry.
#[derive(Debug, Clone)]
pub struct ProfileEntry {
    /// Kernel name.
    pub name: String,
    /// Its counters.
    pub counters: KernelCounters,
    /// Its modeled timing.
    pub timing: KernelTiming,
}

impl ProfileEntry {
    /// Build from a launch result.
    pub fn new(name: impl Into<String>, counters: KernelCounters, timing: KernelTiming) -> Self {
        Self {
            name: name.into(),
            counters,
            timing,
        }
    }
}

/// Render a metric table for several kernels on a device.
pub fn render_profile(spec: &GpuSpec, entries: &[ProfileEntry]) -> String {
    let mut out = format!("== simulated profile: {} ==\n", spec.name);
    out.push_str(&format!(
        "{:<28} {:>9} {:>10} {:>10} {:>9} {:>9} {:>8} {:>8} {:>9}\n",
        "kernel", "time", "GFLOP/s", "DRAM GB/s", "L2 hit", "warp eff", "AI", "occ", "bound"
    ));
    for e in entries {
        let c = &e.counters;
        let t = &e.timing;
        let gflops = t.achieved_gflops(c);
        let dram_bw = if t.total_s > 0.0 {
            c.dram_bytes() / t.total_s / 1e9
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<28} {:>7.2}ms {:>10.1} {:>10.1} {:>8.1}% {:>8.1}% {:>8.2} {:>8.0} {:>9}\n",
            e.name,
            t.total_s * 1e3,
            gflops,
            dram_bw,
            c.l2_read_share() * 100.0,
            c.warp_efficiency() * 100.0,
            c.arithmetic_intensity(),
            c.occupancy_warps_per_sm,
            match t.bound {
                KernelBound::Compute => "compute",
                KernelBound::Memory => "memory",
            },
        ));
    }
    out
}

/// One-line summary of a single kernel (log-style).
pub fn summarize(name: &str, c: &KernelCounters, t: &KernelTiming) -> String {
    format!(
        "{name}: {:.3} ms | {:.1} GFLOP/s | {:.1} MB DRAM | L2 {:.0}% | eff {:.0}%",
        t.total_s * 1e3,
        t.achieved_gflops(c),
        c.dram_bytes() / 1e6,
        c.l2_read_share() * 100.0,
        c.warp_efficiency() * 100.0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdm_device::specs::SYSTEM_B;

    fn sample() -> (KernelCounters, KernelTiming) {
        let c = KernelCounters {
            warps_run: 100,
            warps_traced: 100,
            flops_fp32: 1e9,
            compute_warp_cycles: 1e6,
            lane_cycles_total: 2.4e7,
            global_transactions: 1e6,
            l2_hits: 4e5,
            l2_misses: 6e5,
            occupancy_warps_per_sm: 64.0,
            ..Default::default()
        };
        let t = KernelTiming::model(&c, &SYSTEM_B.gpu);
        (c, t)
    }

    #[test]
    fn profile_renders_all_columns() {
        let (c, t) = sample();
        let text = render_profile(&SYSTEM_B.gpu, &[ProfileEntry::new("mech_v2", c, t)]);
        assert!(text.contains("mech_v2"));
        assert!(text.contains("Tesla V100"));
        assert!(text.contains("memory") || text.contains("compute"));
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn warp_efficiency_is_mean_over_max() {
        let (c, _) = sample();
        // 2.4e7 / (32 × 1e6) = 0.75.
        assert!((c.warp_efficiency() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn summary_line_contains_key_metrics() {
        let (c, t) = sample();
        let line = summarize("k", &c, &t);
        assert!(line.starts_with("k:"));
        assert!(line.contains("GFLOP/s"));
        assert!(line.contains("L2"));
    }
}
