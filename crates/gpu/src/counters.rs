//! Per-kernel performance counters — the reproduction's `nvprof`.
//!
//! The paper extracts FLOP counts, DRAM/L2 traffic, and arithmetic
//! intensity from `nvprof` for the speedup analysis (§VI) and the roofline
//! plot (Fig. 12). The engine fills this structure during execution;
//! [`crate::timing`] turns it into seconds.

/// Counters accumulated over one kernel launch.
///
/// Quantities marked *(traced)* are collected on the sampled subset of
/// warps and scaled to the full launch by [`KernelCounters::finalize_scaling`];
/// everything else is exact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KernelCounters {
    /// Threads that executed (exact).
    pub threads_run: u64,
    /// Warps that executed (exact).
    pub warps_run: u64,
    /// Warps that went through detailed memory tracing (exact).
    pub warps_traced: u64,

    /// Single-precision FLOPs (exact; weighted ops — see `ThreadCtx`).
    pub flops_fp32: f64,
    /// Double-precision FLOPs (exact).
    pub flops_fp64: f64,
    /// Warp-level compute cycles: Σ over warps of the *slowest lane's*
    /// issue cycles — SIMT divergence is inherent in the max (exact).
    pub compute_warp_cycles: f64,
    /// Σ over all lanes of their issue cycles (exact). Together with
    /// [`Self::compute_warp_cycles`] this yields the warp execution
    /// efficiency (`nvprof`'s `warp_execution_efficiency`).
    pub lane_cycles_total: f64,

    /// 128-byte global-memory transactions after coalescing *(traced)*.
    pub global_transactions: f64,
    /// Transactions that hit the simulated L2 *(traced)*.
    pub l2_hits: f64,
    /// Transactions that missed L2 and went to device DRAM *(traced)*.
    pub l2_misses: f64,

    /// Shared-memory accesses *(traced)*.
    pub shared_accesses: f64,
    /// Extra cycles from shared/global atomic serialization within warps
    /// *(traced)*.
    pub atomic_serial_cycles: f64,
    /// Atomic operations issued *(traced)*.
    pub atomic_ops: f64,

    /// Warps resident per SM at launch (occupancy; set once per launch,
    /// min-merged across launches). Low values expose memory latency —
    /// the penalty that makes oversized shared-memory tiles expensive.
    pub occupancy_warps_per_sm: f64,
    /// Block-wide barriers executed (exact).
    pub barriers: u64,
    /// Sub-kernel launches performed from device code (dynamic
    /// parallelism extension; exact).
    pub child_launches: u64,
}

impl KernelCounters {
    /// Bytes moved between L2 and device DRAM (misses × 128 B line).
    pub fn dram_bytes(&self) -> f64 {
        self.l2_misses * 128.0
    }

    /// Bytes served by the L2 (all transactions × 128 B).
    pub fn l2_bytes(&self) -> f64 {
        self.global_transactions * 128.0
    }

    /// Fraction of memory reads served by L2 — the paper's
    /// "percentage of L2 cache reads relative to the number of total
    /// (L2 + HBM) memory reads" (≈ 40 % in Fig. 12's discussion).
    pub fn l2_read_share(&self) -> f64 {
        let total = self.l2_hits + self.l2_misses;
        if total == 0.0 {
            0.0
        } else {
            self.l2_hits / total
        }
    }

    /// Total FLOPs at both precisions.
    pub fn total_flops(&self) -> f64 {
        self.flops_fp32 + self.flops_fp64
    }

    /// Warp execution efficiency in (0, 1]: mean lane cycles over the
    /// slowest lane's cycles, averaged over warps. 1.0 = perfectly
    /// converged warps; low values = the serial-neighbor-loop divergence
    /// the paper discusses for dense models (§VI).
    pub fn warp_efficiency(&self) -> f64 {
        if self.compute_warp_cycles == 0.0 {
            return 1.0;
        }
        (self.lane_cycles_total / (32.0 * self.compute_warp_cycles)).min(1.0)
    }

    /// Arithmetic intensity in FLOPs per DRAM byte (the x-axis of the
    /// roofline plot).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.dram_bytes();
        if bytes == 0.0 {
            f64::INFINITY
        } else {
            self.total_flops() / bytes
        }
    }

    /// Scale the traced quantities up to the full launch. Called once by
    /// the engine after execution; `warps_traced == warps_run` leaves
    /// everything exact.
    pub fn finalize_scaling(&mut self) {
        if self.warps_traced == 0 || self.warps_traced == self.warps_run {
            return;
        }
        let scale = self.warps_run as f64 / self.warps_traced as f64;
        self.global_transactions *= scale;
        self.l2_hits *= scale;
        self.l2_misses *= scale;
        self.shared_accesses *= scale;
        self.atomic_serial_cycles *= scale;
        self.atomic_ops *= scale;
    }

    /// Publish the counters into a metrics registry under
    /// `<prefix>.<field>` with the caller's labels. Raw event counts go
    /// in as counters; the derived ratios (warp efficiency, L2 read
    /// share, arithmetic intensity) as gauges. Everything here is a
    /// deterministic function of the simulated trajectory, so all of it
    /// is safe to gate on.
    pub fn publish_metrics(
        &self,
        prefix: &str,
        labels: &[(&str, &str)],
        reg: &mut bdm_metrics::MetricsRegistry,
    ) {
        let c = |reg: &mut bdm_metrics::MetricsRegistry, field: &str, v: f64| {
            reg.inc_counter(&format!("{prefix}.{field}"), labels, v);
        };
        c(reg, "threads_run", self.threads_run as f64);
        c(reg, "warps_run", self.warps_run as f64);
        c(reg, "flops_fp32", self.flops_fp32);
        c(reg, "flops_fp64", self.flops_fp64);
        c(reg, "global_transactions", self.global_transactions);
        c(reg, "l2_hits", self.l2_hits);
        c(reg, "l2_misses", self.l2_misses);
        c(reg, "shared_accesses", self.shared_accesses);
        c(reg, "atomic_ops", self.atomic_ops);
        c(reg, "barriers", self.barriers as f64);
        reg.set_gauge(
            &format!("{prefix}.warp_efficiency"),
            labels,
            self.warp_efficiency(),
        );
        reg.set_gauge(
            &format!("{prefix}.l2_read_share"),
            labels,
            self.l2_read_share(),
        );
    }

    /// Merge another launch's counters (pipeline totals).
    pub fn merge(&mut self, other: &Self) {
        self.threads_run += other.threads_run;
        self.warps_run += other.warps_run;
        self.warps_traced += other.warps_traced;
        self.flops_fp32 += other.flops_fp32;
        self.flops_fp64 += other.flops_fp64;
        self.compute_warp_cycles += other.compute_warp_cycles;
        self.lane_cycles_total += other.lane_cycles_total;
        self.global_transactions += other.global_transactions;
        self.l2_hits += other.l2_hits;
        self.l2_misses += other.l2_misses;
        self.shared_accesses += other.shared_accesses;
        self.atomic_serial_cycles += other.atomic_serial_cycles;
        self.atomic_ops += other.atomic_ops;
        self.occupancy_warps_per_sm = if self.occupancy_warps_per_sm == 0.0 {
            other.occupancy_warps_per_sm
        } else if other.occupancy_warps_per_sm == 0.0 {
            self.occupancy_warps_per_sm
        } else {
            self.occupancy_warps_per_sm
                .min(other.occupancy_warps_per_sm)
        };
        self.barriers += other.barriers;
        self.child_launches += other.child_launches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_quantities() {
        let c = KernelCounters {
            flops_fp32: 1000.0,
            flops_fp64: 500.0,
            global_transactions: 20.0,
            l2_hits: 12.0,
            l2_misses: 8.0,
            ..Default::default()
        };
        assert_eq!(c.total_flops(), 1500.0);
        assert_eq!(c.dram_bytes(), 8.0 * 128.0);
        assert_eq!(c.l2_bytes(), 20.0 * 128.0);
        assert_eq!(c.l2_read_share(), 0.6);
        assert!((c.arithmetic_intensity() - 1500.0 / 1024.0).abs() < 1e-12);
    }

    #[test]
    fn zero_traffic_ai_is_infinite() {
        let c = KernelCounters {
            flops_fp32: 10.0,
            ..Default::default()
        };
        assert!(c.arithmetic_intensity().is_infinite());
        assert_eq!(c.l2_read_share(), 0.0);
    }

    #[test]
    fn scaling_multiplies_traced_only() {
        let mut c = KernelCounters {
            warps_run: 100,
            warps_traced: 10,
            flops_fp32: 50.0,
            global_transactions: 7.0,
            l2_hits: 4.0,
            l2_misses: 3.0,
            atomic_ops: 2.0,
            ..Default::default()
        };
        c.finalize_scaling();
        assert_eq!(c.global_transactions, 70.0);
        assert_eq!(c.l2_hits, 40.0);
        assert_eq!(c.l2_misses, 30.0);
        assert_eq!(c.atomic_ops, 20.0);
        // Exact quantities untouched.
        assert_eq!(c.flops_fp32, 50.0);
    }

    #[test]
    fn full_trace_scaling_is_identity() {
        let mut c = KernelCounters {
            warps_run: 5,
            warps_traced: 5,
            global_transactions: 9.0,
            ..Default::default()
        };
        let before = c.clone();
        c.finalize_scaling();
        assert_eq!(c, before);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = KernelCounters {
            threads_run: 10,
            flops_fp32: 1.0,
            l2_misses: 2.0,
            barriers: 1,
            ..Default::default()
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.threads_run, 20);
        assert_eq!(a.flops_fp32, 2.0);
        assert_eq!(a.l2_misses, 4.0);
        assert_eq!(a.barriers, 2);
    }
}
