//! Device memory: typed buffers with simulated addresses.
//!
//! Each [`DeviceBuffer`] lives at a base address handed out by a bump
//! allocator, so the cache/coalescing models see a realistic flat address
//! space. Element storage is atomic words: the engine executes lanes
//! sequentially today, but atomics keep the functional semantics
//! identical to a GPU's (relaxed loads/stores compile to plain moves on
//! x86, so this costs nothing).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Alignment of buffer base addresses (matches the 128-byte transaction
/// segment so buffers never straddle segments accidentally at offset 0).
const BUFFER_ALIGN: u64 = 256;

/// Scalar types that can live in device memory.
///
/// Implemented for `f32`, `f64`, and `u32` (the uniform grid's box heads,
/// lengths, and successor links are `u32`).
pub trait DeviceWord: Copy + Send + Sync + 'static {
    /// Width in bytes (4 or 8).
    const BYTES: u32;
    /// Atomic backing store.
    type Atom: Sync + Send;
    /// A zeroed atom.
    fn zero_atom() -> Self::Atom;
    /// Relaxed load.
    fn load(a: &Self::Atom) -> Self;
    /// Relaxed store.
    fn store(a: &Self::Atom, v: Self);
    /// Atomic exchange; returns the previous value.
    fn exchange(a: &Self::Atom, v: Self) -> Self;
    /// Atomic add (CAS loop for floats); returns the previous value.
    fn fetch_add(a: &Self::Atom, v: Self) -> Self;
}

impl DeviceWord for u32 {
    const BYTES: u32 = 4;
    type Atom = AtomicU32;
    fn zero_atom() -> AtomicU32 {
        AtomicU32::new(0)
    }
    fn load(a: &AtomicU32) -> u32 {
        a.load(Ordering::Relaxed)
    }
    fn store(a: &AtomicU32, v: u32) {
        a.store(v, Ordering::Relaxed)
    }
    fn exchange(a: &AtomicU32, v: u32) -> u32 {
        a.swap(v, Ordering::AcqRel)
    }
    fn fetch_add(a: &AtomicU32, v: u32) -> u32 {
        a.fetch_add(v, Ordering::AcqRel)
    }
}

impl DeviceWord for f32 {
    const BYTES: u32 = 4;
    type Atom = AtomicU32;
    fn zero_atom() -> AtomicU32 {
        AtomicU32::new(0.0f32.to_bits())
    }
    fn load(a: &AtomicU32) -> f32 {
        f32::from_bits(a.load(Ordering::Relaxed))
    }
    fn store(a: &AtomicU32, v: f32) {
        a.store(v.to_bits(), Ordering::Relaxed)
    }
    fn exchange(a: &AtomicU32, v: f32) -> f32 {
        f32::from_bits(a.swap(v.to_bits(), Ordering::AcqRel))
    }
    fn fetch_add(a: &AtomicU32, v: f32) -> f32 {
        let mut cur = a.load(Ordering::Relaxed);
        loop {
            let new = (f32::from_bits(cur) + v).to_bits();
            match a.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(prev) => return f32::from_bits(prev),
                Err(observed) => cur = observed,
            }
        }
    }
}

impl DeviceWord for f64 {
    const BYTES: u32 = 8;
    type Atom = AtomicU64;
    fn zero_atom() -> AtomicU64 {
        AtomicU64::new(0.0f64.to_bits())
    }
    fn load(a: &AtomicU64) -> f64 {
        f64::from_bits(a.load(Ordering::Relaxed))
    }
    fn store(a: &AtomicU64, v: f64) {
        a.store(v.to_bits(), Ordering::Relaxed)
    }
    fn exchange(a: &AtomicU64, v: f64) -> f64 {
        f64::from_bits(a.swap(v.to_bits(), Ordering::AcqRel))
    }
    fn fetch_add(a: &AtomicU64, v: f64) -> f64 {
        let mut cur = a.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match a.compare_exchange_weak(cur, new, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(prev) => return f64::from_bits(prev),
                Err(observed) => cur = observed,
            }
        }
    }
}

/// A typed allocation in simulated device memory.
pub struct DeviceBuffer<T: DeviceWord> {
    base: u64,
    data: Vec<T::Atom>,
}

impl<T: DeviceWord> DeviceBuffer<T> {
    pub(crate) fn with_base(base: u64, len: usize) -> Self {
        Self {
            base,
            data: (0..len).map(|_| T::zero_atom()).collect(),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes (what a transfer of this buffer moves).
    pub fn bytes(&self) -> u64 {
        self.data.len() as u64 * T::BYTES as u64
    }

    /// Simulated address of element `i` (feeds the coalescer/L2 model).
    #[inline(always)]
    pub fn addr(&self, i: usize) -> u64 {
        self.base + (i as u64) * T::BYTES as u64
    }

    /// Functional load (no perf accounting — the engine's `ThreadCtx`
    /// wraps this with tracing; host-side readback uses it directly).
    #[inline(always)]
    pub fn read(&self, i: usize) -> T {
        T::load(&self.data[i])
    }

    /// Functional store (no perf accounting).
    #[inline(always)]
    pub fn write(&self, i: usize, v: T) {
        T::store(&self.data[i], v)
    }

    /// Functional atomic exchange.
    #[inline(always)]
    pub fn atomic_exchange(&self, i: usize, v: T) -> T {
        T::exchange(&self.data[i], v)
    }

    /// Functional atomic add.
    #[inline(always)]
    pub fn atomic_add(&self, i: usize, v: T) -> T {
        T::fetch_add(&self.data[i], v)
    }

    /// Host → device copy (contents only; transfer *time* is charged by
    /// the pipeline through the PCIe model).
    pub fn upload(&self, src: &[T]) {
        assert_eq!(src.len(), self.data.len(), "upload size mismatch");
        for (a, &v) in self.data.iter().zip(src) {
            T::store(a, v);
        }
    }

    /// Host → device copy into `[offset, offset + src.len())` — the
    /// ranged form persistent (capacity-sized) buffers need: a resident
    /// pipeline uploads only the live prefix, or only an appended tail.
    pub fn upload_at(&self, offset: usize, src: &[T]) {
        let end = offset + src.len();
        assert!(end <= self.data.len(), "ranged upload out of bounds");
        for (a, &v) in self.data[offset..end].iter().zip(src) {
            T::store(a, v);
        }
    }

    /// Device → host copy.
    pub fn download(&self, dst: &mut [T]) {
        assert_eq!(dst.len(), self.data.len(), "download size mismatch");
        for (a, d) in self.data.iter().zip(dst.iter_mut()) {
            *d = T::load(a);
        }
    }

    /// Device → host copy of `[offset, offset + dst.len())`.
    pub fn download_at(&self, offset: usize, dst: &mut [T]) {
        let end = offset + dst.len();
        assert!(end <= self.data.len(), "ranged download out of bounds");
        for (a, d) in self.data[offset..end].iter().zip(dst.iter_mut()) {
            *d = T::load(a);
        }
    }

    /// Fill `[offset, offset + len)` with `v`.
    pub fn fill_at(&self, offset: usize, len: usize, v: T) {
        let end = offset + len;
        assert!(end <= self.data.len(), "ranged fill out of bounds");
        for a in &self.data[offset..end] {
            T::store(a, v);
        }
    }

    /// Fill every element with `v`.
    pub fn fill(&self, v: T) {
        for a in &self.data {
            T::store(a, v);
        }
    }
}

/// Bump allocator handing out device address ranges.
#[derive(Debug, Default)]
pub struct DeviceAllocator {
    next: u64,
    allocated: u64,
}

impl DeviceAllocator {
    /// Fresh allocator starting at a nonzero base (address 0 is reserved
    /// so it can never alias a real buffer).
    pub fn new() -> Self {
        Self {
            next: BUFFER_ALIGN,
            allocated: 0,
        }
    }

    /// Allocate a buffer of `len` elements.
    pub fn alloc<T: DeviceWord>(&mut self, len: usize) -> DeviceBuffer<T> {
        let bytes = len as u64 * T::BYTES as u64;
        let base = self.next;
        self.next += bytes.div_ceil(BUFFER_ALIGN) * BUFFER_ALIGN;
        self.allocated += bytes;
        DeviceBuffer::with_base(base, len)
    }

    /// Total payload bytes allocated so far.
    pub fn allocated_bytes(&self) -> u64 {
        self.allocated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_disjoint_ranges() {
        let mut a = DeviceAllocator::new();
        let b1 = a.alloc::<f32>(100);
        let b2 = a.alloc::<f64>(50);
        let end1 = b1.addr(99) + 4;
        assert!(b2.addr(0) >= end1, "buffers overlap");
        assert_eq!(b2.addr(0) % BUFFER_ALIGN, 0);
    }

    #[test]
    fn upload_download_roundtrip() {
        let mut a = DeviceAllocator::new();
        let buf = a.alloc::<f64>(4);
        buf.upload(&[1.0, 2.0, 3.0, 4.0]);
        let mut out = [0.0; 4];
        buf.download(&mut out);
        assert_eq!(out, [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn atomic_add_f32_accumulates() {
        let mut a = DeviceAllocator::new();
        let buf = a.alloc::<f32>(1);
        for _ in 0..10 {
            buf.atomic_add(0, 0.5);
        }
        assert_eq!(buf.read(0), 5.0);
    }

    #[test]
    fn atomic_exchange_returns_previous() {
        let mut a = DeviceAllocator::new();
        let buf = a.alloc::<u32>(1);
        buf.write(0, 7);
        let prev = buf.atomic_exchange(0, 9);
        assert_eq!(prev, 7);
        assert_eq!(buf.read(0), 9);
    }

    #[test]
    fn addresses_stride_by_element_size() {
        let mut a = DeviceAllocator::new();
        let b32 = a.alloc::<f32>(8);
        let b64 = a.alloc::<f64>(8);
        assert_eq!(b32.addr(1) - b32.addr(0), 4);
        assert_eq!(b64.addr(1) - b64.addr(0), 8);
    }

    #[test]
    fn bytes_accounting() {
        let mut a = DeviceAllocator::new();
        let b = a.alloc::<f64>(1000);
        assert_eq!(b.bytes(), 8000);
        assert_eq!(a.allocated_bytes(), 8000);
    }

    #[test]
    fn ranged_transfers_touch_only_their_window() {
        let mut a = DeviceAllocator::new();
        let buf = a.alloc::<u32>(8);
        buf.fill(9);
        buf.upload_at(2, &[1, 2, 3]);
        let mut out = [0u32; 8];
        buf.download(&mut out);
        assert_eq!(out, [9, 9, 1, 2, 3, 9, 9, 9]);
        let mut tail = [0u32; 3];
        buf.download_at(5, &mut tail);
        assert_eq!(tail, [9, 9, 9]);
        buf.fill_at(0, 2, 0);
        assert_eq!(buf.read(0), 0);
        assert_eq!(buf.read(1), 0);
        assert_eq!(buf.read(2), 1);
    }

    #[test]
    fn fill_sets_all() {
        let mut a = DeviceAllocator::new();
        let b = a.alloc::<u32>(16);
        b.fill(u32::MAX);
        assert!((0..16).all(|i| b.read(i) == u32::MAX));
    }
}
