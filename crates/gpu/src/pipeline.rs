//! The complete GPU offload pipeline for the mechanical interaction
//! operation — what `bdm-sim` plugs in as its GPU environment.
//!
//! One step = H2D transfer of the needed SoA columns → device grid build
//! → mechanical kernel (version-dependent) → D2H transfer of the
//! displacements. Only "a subset of the agents' state data" crosses the
//! bus (paper §II): positions, diameters, adherence in; displacements out.
//!
//! The four paper versions plus the post-paper experiments:
//!
//! | version | precision | input order | kernel |
//! |---|---|---|---|
//! | `V0`       | FP64 | insertion     | [`MechKernel`] |
//! | `V1Fp32`   | FP32 | insertion     | [`MechKernel`] |
//! | `V2Sorted` | FP32 | Morton-sorted | [`MechKernel`] |
//! | `V3Shared` | FP32 | Morton-sorted | [`SharedMechKernel`] |
//! | `DynPar`   | FP32 | Morton-sorted | [`ParentKernel`]+[`ChildKernel`]+[`FinishKernel`] |
//! | `V4Csr`    | FP32 | Morton-sorted | [`CsrCountKernel`]+[`CsrScatterKernel`]+[`MechCsrKernel`] |

use crate::counters::KernelCounters;
use crate::engine::FromWord;
use crate::frontend::{ApiFrontend, Runtime};
use crate::kernels::csr::{exclusive_scan, CsrCountKernel, CsrScatterKernel, MechCsrKernel};
use crate::kernels::dynpar::{ChildKernel, FinishKernel, ParentKernel};
use crate::kernels::geom::GridGeom;
use crate::kernels::grid_build::{reset_grid_buffers, GridBuildKernel};
use crate::kernels::mech::MechKernel;
use crate::kernels::mech_shared::{shared_words_for, SharedMechKernel};
use crate::mem::{DeviceAllocator, DeviceWord};
use bdm_device::specs::SystemSpec;
use bdm_device::transfer::PcieModel;
use bdm_math::interaction::MechParams;
use bdm_math::{Aabb, Scalar, Vec3};

/// Which of the paper's kernel versions to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVersion {
    /// Straight FP64 port (paper "GPU version 0").
    V0,
    /// FP32 precision reduction (Improvement I).
    V1Fp32,
    /// FP32 + Morton-sorted state (Improvement II).
    V2Sorted,
    /// FP32 + sorted + shared-memory tiles (Improvement III — a
    /// regression, per the paper).
    V3Shared,
    /// FP32 + sorted + dynamic-parallelism neighbor-loop fan-out
    /// (the paper's §VI future-work hypothesis).
    DynPar,
    /// FP32 + sorted + CSR counting-sort grid (post-paper): the force
    /// kernel streams contiguous `cell_agents` slices instead of chasing
    /// per-agent successor links.
    V4Csr,
}

impl KernelVersion {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            KernelVersion::V0 => "GPU version 0",
            KernelVersion::V1Fp32 => "GPU version I (fp32)",
            KernelVersion::V2Sorted => "GPU version II (+zorder)",
            KernelVersion::V3Shared => "GPU version III (+shared)",
            KernelVersion::DynPar => "GPU dynpar (future work)",
            KernelVersion::V4Csr => "GPU version IV (+CSR)",
        }
    }

    /// All versions, in the order the paper introduces them (the
    /// post-paper CSR experiment last).
    pub const ALL: [KernelVersion; 6] = [
        KernelVersion::V0,
        KernelVersion::V1Fp32,
        KernelVersion::V2Sorted,
        KernelVersion::V3Shared,
        KernelVersion::DynPar,
        KernelVersion::V4Csr,
    ];

    /// Whether this version sorts agents along the Z-order curve.
    pub fn sorts(&self) -> bool {
        !matches!(self, KernelVersion::V0 | KernelVersion::V1Fp32)
    }

    /// Whether this version computes in single precision.
    pub fn fp32(&self) -> bool {
        !matches!(self, KernelVersion::V0)
    }
}

/// Timing + counters of one offloaded step.
#[derive(Debug, Clone)]
pub struct GpuStepReport {
    /// Host→device transfer seconds (modeled PCIe).
    pub h2d_s: f64,
    /// Device→host transfer seconds.
    pub d2h_s: f64,
    /// Grid-construction kernel seconds.
    pub build_s: f64,
    /// Mechanical kernel(s) seconds.
    pub mech_s: f64,
    /// Total modeled step time.
    pub total_s: f64,
    /// Merged counters across all launches of the step.
    pub counters: KernelCounters,
    /// Counters of the mechanical kernel alone (roofline input).
    pub mech_counters: KernelCounters,
    /// Host-side gather passes spent permuting columns for Improvement
    /// II: 5 on upload + 3 on the inverse at download for a sorting
    /// version, 0 when the caller's columns already arrived in
    /// `sort_curve` order (or the version does not sort). The host
    /// `reorder` operation keeps resident state in curve order exactly
    /// so this stays 0 and the upload degenerates to a straight memcpy.
    pub sort_gathers: u32,
}

impl GpuStepReport {
    /// Kernel-only seconds (the quantity Figs. 8–11 compare).
    pub fn kernel_s(&self) -> f64 {
        self.build_s + self.mech_s
    }

    /// Publish the step's timing breakdown and kernel counters into a
    /// metrics registry. Every time here is *modeled* (the trace-driven
    /// device and PCIe models), hence deterministic and gateable —
    /// unlike host wall clocks.
    pub fn publish_metrics(&self, labels: &[(&str, &str)], reg: &mut bdm_metrics::MetricsRegistry) {
        reg.observe("gpu.h2d_s", labels, self.h2d_s);
        reg.observe("gpu.d2h_s", labels, self.d2h_s);
        reg.observe("gpu.build_s", labels, self.build_s);
        reg.observe("gpu.mech_s", labels, self.mech_s);
        reg.observe("gpu.total_s", labels, self.total_s);
        reg.inc_counter("gpu.sort_gathers", labels, self.sort_gathers as f64);
        self.counters.publish_metrics("gpu.step", labels, reg);
        self.mech_counters.publish_metrics("gpu.mech", labels, reg);
    }
}

/// Scene inputs of one step (host-side, always FP64 — BioDynaMo's storage
/// precision; the pipeline narrows internally for FP32 versions).
#[derive(Debug, Clone, Copy)]
pub struct SceneRef<'a> {
    /// Position columns.
    pub xs: &'a [f64],
    /// Y coordinates.
    pub ys: &'a [f64],
    /// Z coordinates.
    pub zs: &'a [f64],
    /// Diameters.
    pub diameters: &'a [f64],
    /// Adherence thresholds.
    pub adherences: &'a [f64],
    /// Simulation space.
    pub space: Aabb<f64>,
    /// Uniform-grid voxel edge (≥ the largest interaction radius).
    pub box_len: f64,
}

/// The full offload pipeline.
pub struct MechanicalPipeline {
    system: SystemSpec,
    runtime: Runtime,
    version: KernelVersion,
    pcie: PcieModel,
    /// Candidate threshold for the dynamic-parallelism parent kernel.
    pub dynpar_threshold: u32,
    /// Space-filling curve used by the sorting versions (II, III,
    /// dynpar). Z-order is the paper's choice; Hilbert is the ablation.
    pub sort_curve: bdm_morton::Curve,
}

impl MechanicalPipeline {
    /// Build a pipeline for a system/frontend/version combination.
    /// `trace_sample` = trace every n-th warp (1 = all; larger values
    /// bound simulation cost on big scenes).
    pub fn new(
        system: SystemSpec,
        frontend: ApiFrontend,
        version: KernelVersion,
        trace_sample: u64,
    ) -> Self {
        Self {
            system,
            runtime: Runtime::new(frontend, system.gpu, trace_sample),
            version,
            pcie: PcieModel::new(system.pcie_bandwidth, system.pcie_latency_s),
            dynpar_threshold: 96,
            sort_curve: bdm_morton::Curve::ZOrder,
        }
    }

    /// The configured kernel version.
    pub fn version(&self) -> KernelVersion {
        self.version
    }

    /// The system being simulated.
    pub fn system(&self) -> &SystemSpec {
        &self.system
    }

    /// Execute one mechanical-interaction step. Returns per-agent
    /// displacements (in the caller's original agent order) and a report.
    pub fn step(
        &self,
        scene: &SceneRef<'_>,
        params: &MechParams<f64>,
    ) -> (Vec<Vec3<f64>>, GpuStepReport) {
        // Invalidate the L2 between steps: each step re-uploads fresh
        // state, so cross-step line reuse would be an artifact.
        self.runtime.device().reset_l2();
        if self.version.fp32() {
            self.run::<f32>(scene, params)
        } else {
            self.run::<f64>(scene, params)
        }
    }

    fn run<R: Scalar + DeviceWord + FromWord>(
        &self,
        scene: &SceneRef<'_>,
        params: &MechParams<f64>,
    ) -> (Vec<Vec3<f64>>, GpuStepReport) {
        let n = scene.xs.len();
        assert!(n > 0, "empty scene");
        let params_r: MechParams<R> = params.cast();
        let narrow = |col: &[f64]| -> Vec<R> { col.iter().map(|&v| R::from_f64(v)).collect() };

        let mut xs = narrow(scene.xs);
        let mut ys = narrow(scene.ys);
        let mut zs = narrow(scene.zs);
        let mut diam = narrow(scene.diameters);
        let mut adh = narrow(scene.adherences);
        let space = Aabb::new(scene.space.min.cast::<R>(), scene.space.max.cast::<R>());
        let box_len = R::from_f64(scene.box_len);

        // Improvement II: host-side space-filling-curve sort of the SoA
        // columns (Z-order by default; see `sort_curve`). Keys are
        // voxel keys clamped to the grid dims — the same keys the
        // resident `reorder` operation sorts by — so when the caller's
        // columns already arrive in curve order the keys come out
        // non-decreasing and the whole permutation (5 upload gathers +
        // 3 inverse gathers after download) is skipped: the upload is a
        // straight memcpy of the host columns.
        let mut sort_gathers = 0u32;
        let perm = if self.version.sorts() {
            let keys = bdm_morton::cell_keys(&xs, &ys, &zs, &space, box_len, self.sort_curve);
            if keys.is_sorted() {
                None
            } else {
                let p = bdm_soa::Permutation::sorting_by_key(&keys);
                let mut scratch = Vec::new();
                for col in [&mut xs, &mut ys, &mut zs, &mut diam, &mut adh] {
                    p.apply_in_place(col, &mut scratch);
                    sort_gathers += 1;
                }
                Some(p)
            }
        } else {
            None
        };

        // Grid geometry (host-side, matches bdm_grid layout).
        let dims = {
            let e = space.extents();
            let dim = |len: R| -> u32 { ((len / box_len).ceil().to_f64() as u32).max(1) };
            [dim(e.x), dim(e.y), dim(e.z)]
        };
        let geom = GridGeom {
            dims,
            min: space.min,
            box_len,
        };
        let num_boxes = geom.num_boxes();

        // Allocate + upload.
        let mut alloc = DeviceAllocator::new();
        let px = alloc.alloc::<R>(n);
        let py = alloc.alloc::<R>(n);
        let pz = alloc.alloc::<R>(n);
        let dd = alloc.alloc::<R>(n);
        let da = alloc.alloc::<R>(n);
        px.upload(&xs);
        py.upload(&ys);
        pz.upload(&zs);
        dd.upload(&diam);
        da.upload(&adh);
        let box_start = alloc.alloc::<u32>(num_boxes);
        let box_length = alloc.alloc::<u32>(num_boxes);
        let successors = alloc.alloc::<u32>(n);
        // Version IV's CSR grid (unused by the linked-list versions;
        // allocation alone costs nothing in the model). The cursor is
        // pre-loaded with the scanned start offsets and, once the scatter
        // exhausts it, doubles as the end-offset array the force kernel
        // reads.
        let csr_cursor = alloc.alloc::<u32>(num_boxes);
        let csr_agents = alloc.alloc::<u32>(n);
        let ox = alloc.alloc::<R>(n);
        let oy = alloc.alloc::<R>(n);
        let oz = alloc.alloc::<R>(n);

        let mut h2d_bytes = 5 * n as u64 * <R as DeviceWord>::BYTES as u64;
        let mut h2d_transfers = 5;
        let mut d2h_bytes = 3 * n as u64 * <R as DeviceWord>::BYTES as u64;
        let mut d2h_transfers = 3;

        // Device grid build: atomic list insertion for the paper
        // versions; for version IV, the two-pass counting sort with a
        // host-side prefix sum in between. The scan is a grid-wide
        // dependency, so it reads the counts back and re-uploads the
        // offsets — a PCIe round trip charged the same way version III's
        // occupancy readback is.
        let mut build_counters = KernelCounters::default();
        let mut build_s = 0.0;
        if self.version == KernelVersion::V4Csr {
            let counts = alloc.alloc::<u32>(num_boxes);
            let count = self.runtime.dispatch(
                &CsrCountKernel {
                    n,
                    geom,
                    pos_x: &px,
                    pos_y: &py,
                    pos_z: &pz,
                    counts: &counts,
                },
                n,
                128,
                0,
            );
            build_counters.merge(&count.counters);
            build_s += count.timing.total_s;

            let mut host_counts = vec![0u32; num_boxes];
            counts.download(&mut host_counts);
            d2h_bytes += 4 * num_boxes as u64;
            d2h_transfers += 1;
            let starts = exclusive_scan(&host_counts);
            csr_cursor.upload(&starts[..num_boxes]);
            h2d_bytes += 4 * num_boxes as u64;
            h2d_transfers += 1;

            let scatter = self.runtime.dispatch(
                &CsrScatterKernel {
                    n,
                    geom,
                    pos_x: &px,
                    pos_y: &py,
                    pos_z: &pz,
                    cursor: &csr_cursor,
                    cell_agents: &csr_agents,
                },
                n,
                128,
                0,
            );
            build_counters.merge(&scatter.counters);
            build_s += scatter.timing.total_s;
        } else {
            reset_grid_buffers(&box_start, &box_length);
            let build = self.runtime.dispatch(
                &GridBuildKernel {
                    n,
                    geom,
                    pos_x: &px,
                    pos_y: &py,
                    pos_z: &pz,
                    box_start: &box_start,
                    box_length: &box_length,
                    successors: &successors,
                },
                n,
                128,
                0,
            );
            build_counters.merge(&build.counters);
            build_s += build.timing.total_s;
        }

        // Mechanical kernel(s).
        let mut mech_counters = KernelCounters::default();
        let mut mech_s = 0.0;
        match self.version {
            KernelVersion::V0 | KernelVersion::V1Fp32 | KernelVersion::V2Sorted => {
                let r = self.runtime.dispatch(
                    &MechKernel {
                        n,
                        geom,
                        pos_x: &px,
                        pos_y: &py,
                        pos_z: &pz,
                        diameter: &dd,
                        adherence: &da,
                        box_start: &box_start,
                        successors: &successors,
                        out_x: &ox,
                        out_y: &oy,
                        out_z: &oz,
                        params: params_r,
                    },
                    n,
                    128,
                    0,
                );
                mech_counters.merge(&r.counters);
                mech_s += r.timing.total_s;
            }
            KernelVersion::V4Csr => {
                let r = self.runtime.dispatch(
                    &MechCsrKernel {
                        n,
                        geom,
                        pos_x: &px,
                        pos_y: &py,
                        pos_z: &pz,
                        diameter: &dd,
                        adherence: &da,
                        cell_ends: &csr_cursor,
                        cell_agents: &csr_agents,
                        out_x: &ox,
                        out_y: &oy,
                        out_z: &oz,
                        params: params_r,
                    },
                    n,
                    128,
                    0,
                );
                mech_counters.merge(&r.counters);
                mech_s += r.timing.total_s;
            }
            KernelVersion::V3Shared => {
                // Host needs the voxel occupancy to enumerate non-empty
                // voxels and size the blocks — a D2H readback the fused
                // version avoids; charge it.
                let mut lengths = vec![0u32; num_boxes];
                box_length.download(&mut lengths);
                d2h_bytes += 4 * num_boxes as u64;
                d2h_transfers += 1;
                let non_empty: Vec<u32> = (0..num_boxes as u32)
                    .filter(|&b| lengths[b as usize] > 0)
                    .collect();
                let max_len = lengths.iter().copied().max().unwrap_or(0);
                let block_dim = (max_len.max(28)).div_ceil(32) * 32;
                let voxel_ids = alloc.alloc::<u32>(non_empty.len());
                voxel_ids.upload(&non_empty);
                h2d_bytes += 4 * non_empty.len() as u64;
                h2d_transfers += 1;

                let spec = self.system.gpu;
                // The tile is allocated statically for the worst case —
                // the paper's kernel cannot know per-voxel occupancy at
                // compile time. The near-full shared-memory footprint
                // limits residency to ~1 block/SM, which (together with
                // the cursor atomics and boundary-check divergence) is
                // why version III loses to version II.
                let tile_cap =
                    ((spec.shared_mem_per_sm as usize / 8).saturating_sub(2) / 5).min(2048);
                let _ = max_len;
                let k = SharedMechKernel {
                    geom,
                    voxel_ids: &voxel_ids,
                    pos_x: &px,
                    pos_y: &py,
                    pos_z: &pz,
                    diameter: &dd,
                    adherence: &da,
                    box_start: &box_start,
                    box_length: &box_length,
                    successors: &successors,
                    out_x: &ox,
                    out_y: &oy,
                    out_z: &oz,
                    tile_cap,
                    params: params_r,
                };
                let items = non_empty.len() * block_dim as usize;
                let r = self
                    .runtime
                    .dispatch(&k, items, block_dim, shared_words_for(tile_cap) * 8);
                mech_counters.merge(&r.counters);
                mech_s += r.timing.total_s;
            }
            KernelVersion::DynPar => {
                let queue = alloc.alloc::<u32>(n);
                let queue_count = alloc.alloc::<u32>(1);
                let parent = self.runtime.dispatch(
                    &ParentKernel {
                        n,
                        geom,
                        pos_x: &px,
                        pos_y: &py,
                        pos_z: &pz,
                        diameter: &dd,
                        adherence: &da,
                        box_start: &box_start,
                        box_length: &box_length,
                        successors: &successors,
                        out_x: &ox,
                        out_y: &oy,
                        out_z: &oz,
                        queue: &queue,
                        queue_count: &queue_count,
                        threshold: self.dynpar_threshold,
                        params: params_r,
                    },
                    n,
                    128,
                    0,
                );
                mech_counters.merge(&parent.counters);
                mech_s += parent.timing.total_s;

                let queue_len = queue_count.read(0) as usize;
                if queue_len > 0 {
                    let partials = alloc.alloc::<R>(queue_len * 27 * 3);
                    let child = self.runtime.dispatch(
                        &ChildKernel {
                            queue_len,
                            geom,
                            pos_x: &px,
                            pos_y: &py,
                            pos_z: &pz,
                            diameter: &dd,
                            box_start: &box_start,
                            successors: &successors,
                            queue: &queue,
                            partials: &partials,
                            params: params_r,
                        },
                        queue_len * 27,
                        128,
                        0,
                    );
                    mech_counters.merge(&child.counters);
                    mech_s += child.timing.total_s;
                    let finish = self.runtime.dispatch(
                        &FinishKernel {
                            queue_len,
                            queue: &queue,
                            partials: &partials,
                            adherence: &da,
                            out_x: &ox,
                            out_y: &oy,
                            out_z: &oz,
                            params: params_r,
                        },
                        queue_len,
                        128,
                        0,
                    );
                    mech_counters.merge(&finish.counters);
                    mech_s += finish.timing.total_s;
                }
            }
        }

        // Download and (if sorted) restore the caller's agent order.
        let mut out_x = vec![R::ZERO; n];
        let mut out_y = vec![R::ZERO; n];
        let mut out_z = vec![R::ZERO; n];
        ox.download(&mut out_x);
        oy.download(&mut out_y);
        oz.download(&mut out_z);
        if let Some(p) = &perm {
            let inv = p.inverse();
            let mut scratch = Vec::new();
            for col in [&mut out_x, &mut out_y, &mut out_z] {
                inv.apply_in_place(col, &mut scratch);
                sort_gathers += 1;
            }
        }
        let displacements: Vec<Vec3<f64>> = (0..n)
            .map(|i| Vec3::new(out_x[i].to_f64(), out_y[i].to_f64(), out_z[i].to_f64()))
            .collect();

        let h2d_s = self.pcie.transfers_time(h2d_transfers, h2d_bytes);
        let d2h_s = self.pcie.transfers_time(d2h_transfers, d2h_bytes);
        let mut counters = build_counters.clone();
        counters.merge(&mech_counters);
        let report = GpuStepReport {
            h2d_s,
            d2h_s,
            build_s,
            mech_s,
            total_s: h2d_s + build_s + mech_s + d2h_s,
            counters,
            mech_counters,
            sort_gathers,
        };
        (displacements, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdm_device::specs::SYSTEM_A;
    use bdm_math::SplitMix64;

    type SceneCols = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

    fn scene(n: usize, extent: f64, seed: u64) -> SceneCols {
        let mut rng = SplitMix64::new(seed);
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        let zs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        (xs, ys, zs, vec![1.0; n], vec![0.01; n])
    }

    fn run_version(v: KernelVersion, frontend: ApiFrontend) -> (Vec<Vec3<f64>>, GpuStepReport) {
        let n = 400;
        let extent = 8.0;
        let (xs, ys, zs, dm, ad) = scene(n, extent, 7);
        let sr = SceneRef {
            xs: &xs,
            ys: &ys,
            zs: &zs,
            diameters: &dm,
            adherences: &ad,
            space: Aabb::new(Vec3::zero(), Vec3::splat(extent)),
            box_len: 1.0,
        };
        let p = MechanicalPipeline::new(SYSTEM_A, frontend, v, 1);
        p.step(&sr, &MechParams::default_params())
    }

    #[test]
    fn all_versions_agree_functionally() {
        let (base, _) = run_version(KernelVersion::V0, ApiFrontend::Cuda);
        assert!(base.iter().any(|d| *d != Vec3::zero()), "static scene?");
        for v in [
            KernelVersion::V1Fp32,
            KernelVersion::V2Sorted,
            KernelVersion::V3Shared,
            KernelVersion::DynPar,
            KernelVersion::V4Csr,
        ] {
            let (got, _) = run_version(v, ApiFrontend::Cuda);
            let mut max_err = 0.0f64;
            for i in 0..base.len() {
                max_err = max_err.max((base[i] - got[i]).norm());
            }
            // FP32 + reassociation tolerance.
            assert!(max_err < 1e-3, "{:?} deviates: {max_err}", v);
        }
    }

    #[test]
    fn frontends_agree() {
        let (cuda, _) = run_version(KernelVersion::V2Sorted, ApiFrontend::Cuda);
        let (opencl, _) = run_version(KernelVersion::V2Sorted, ApiFrontend::OpenCl);
        for i in 0..cuda.len() {
            assert_eq!(cuda[i], opencl[i]);
        }
    }

    #[test]
    fn fp32_reduces_transfer_bytes() {
        let (_, r64) = run_version(KernelVersion::V0, ApiFrontend::Cuda);
        let (_, r32) = run_version(KernelVersion::V1Fp32, ApiFrontend::Cuda);
        // Wire time scales with element width (same latency terms).
        assert!(r64.h2d_s > r32.h2d_s);
        assert!(r64.d2h_s > r32.d2h_s);
    }

    #[test]
    fn fp32_is_faster_than_fp64() {
        let (_, r64) = run_version(KernelVersion::V0, ApiFrontend::Cuda);
        let (_, r32) = run_version(KernelVersion::V1Fp32, ApiFrontend::Cuda);
        assert!(
            r32.mech_s < r64.mech_s,
            "fp32 {} should beat fp64 {}",
            r32.mech_s,
            r64.mech_s
        );
    }

    #[test]
    fn version_helpers() {
        assert!(!KernelVersion::V0.fp32());
        assert!(!KernelVersion::V0.sorts());
        assert!(KernelVersion::V1Fp32.fp32());
        assert!(!KernelVersion::V1Fp32.sorts());
        for v in [
            KernelVersion::V2Sorted,
            KernelVersion::V3Shared,
            KernelVersion::DynPar,
            KernelVersion::V4Csr,
        ] {
            assert!(v.fp32() && v.sorts(), "{v:?}");
        }
        // Labels are unique (the benchmark tables key on them).
        let labels: std::collections::HashSet<&str> =
            KernelVersion::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), KernelVersion::ALL.len());
    }

    #[test]
    fn hilbert_sorting_pipeline_matches_zorder() {
        let n = 300;
        let extent = 8.0;
        let (xs, ys, zs, dm, ad) = scene(n, extent, 13);
        let sr = SceneRef {
            xs: &xs,
            ys: &ys,
            zs: &zs,
            diameters: &dm,
            adherences: &ad,
            space: Aabb::new(Vec3::zero(), Vec3::splat(extent)),
            box_len: 1.0,
        };
        let params = MechParams::default_params();
        let z = MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, KernelVersion::V2Sorted, 1);
        let mut h =
            MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, KernelVersion::V2Sorted, 1);
        h.sort_curve = bdm_morton::Curve::Hilbert;
        let (dz, _) = z.step(&sr, &params);
        let (dh, _) = h.step(&sr, &params);
        // The curve changes only iteration order: FP32 reassociation noise.
        let mut max_err = 0.0f64;
        for i in 0..n {
            max_err = max_err.max((dz[i] - dh[i]).norm());
        }
        assert!(max_err < 1e-4, "curves disagree by {max_err}");
    }

    /// Acceptance pin for the host-reorder integration: a scrambled
    /// scene costs a sorting version exactly 8 gather passes (5 column
    /// uploads + 3 inverse downloads); a scene whose columns already
    /// arrive in `sort_curve` order costs 0 — the pipeline detects the
    /// non-decreasing keys and uploads the columns as-is. Non-sorting
    /// versions never gather.
    #[test]
    fn presorted_input_skips_the_sort_gathers() {
        let n = 500;
        let extent = 8.0;
        let (mut xs, mut ys, mut zs, dm, ad) = scene(n, extent, 21);
        let space = Aabb::new(Vec3::zero(), Vec3::splat(extent));
        let params = MechParams::default_params();
        let pipe = |v| MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, v, 1);

        let (sx, sy, sz) = (xs.clone(), ys.clone(), zs.clone());
        let scrambled = SceneRef {
            xs: &sx,
            ys: &sy,
            zs: &sz,
            diameters: &dm,
            adherences: &ad,
            space,
            box_len: 1.0,
        };
        let (_, r) = pipe(KernelVersion::V2Sorted).step(&scrambled, &params);
        assert_eq!(
            r.sort_gathers, 8,
            "scrambled input must pay the full permutation"
        );
        let (_, r0) = pipe(KernelVersion::V1Fp32).step(&scrambled, &params);
        assert_eq!(r0.sort_gathers, 0, "non-sorting version never gathers");

        // Pre-sort the host columns along the same curve — what the
        // resident `reorder` operation does between steps.
        let keys = bdm_morton::cell_keys(&xs, &ys, &zs, &space, 1.0, bdm_morton::Curve::ZOrder);
        let p = bdm_soa::Permutation::sorting_by_key(&keys);
        let mut scratch = Vec::new();
        for col in [&mut xs, &mut ys, &mut zs] {
            p.apply_in_place(col, &mut scratch);
        }
        let sorted = SceneRef {
            xs: &xs,
            ys: &ys,
            zs: &zs,
            diameters: &dm,
            adherences: &ad,
            space,
            box_len: 1.0,
        };
        let (_, rs) = pipe(KernelVersion::V2Sorted).step(&sorted, &params);
        assert_eq!(
            rs.sort_gathers, 0,
            "curve-ordered input must skip the permutation"
        );
    }

    /// Version IV's claim: streaming CSR slices coalesces where the
    /// linked-list successor chases cannot, so the step moves fewer
    /// 128-byte transactions through the L2 and DRAM than version II —
    /// even after paying for the extra build pass and scan round trip.
    #[test]
    fn v4_csr_reduces_memory_transactions_vs_v2() {
        let n = 3000;
        let extent = 10.0;
        let (xs, ys, zs, dm, ad) = scene(n, extent, 42);
        let sr = SceneRef {
            xs: &xs,
            ys: &ys,
            zs: &zs,
            diameters: &dm,
            adherences: &ad,
            space: Aabb::new(Vec3::zero(), Vec3::splat(extent)),
            box_len: 1.0,
        };
        let params = MechParams::default_params();
        let run = |v: KernelVersion| {
            MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, v, 1)
                .step(&sr, &params)
                .1
        };
        let r2 = run(KernelVersion::V2Sorted);
        let r4 = run(KernelVersion::V4Csr);
        // The force kernel alone: strictly fewer global transactions and
        // fewer DRAM lines.
        assert!(
            r4.mech_counters.global_transactions < r2.mech_counters.global_transactions,
            "CSR mech transactions {} !< linked {}",
            r4.mech_counters.global_transactions,
            r2.mech_counters.global_transactions
        );
        assert!(
            r4.mech_counters.l2_misses <= r2.mech_counters.l2_misses,
            "CSR mech DRAM lines {} !<= linked {}",
            r4.mech_counters.l2_misses,
            r2.mech_counters.l2_misses
        );
        // Whole step (build included): still ahead.
        assert!(
            r4.counters.global_transactions < r2.counters.global_transactions,
            "CSR step transactions {} !< linked {}",
            r4.counters.global_transactions,
            r2.counters.global_transactions
        );
        assert!(
            r4.counters.l2_misses <= r2.counters.l2_misses,
            "CSR step DRAM lines {} !<= linked {}",
            r4.counters.l2_misses,
            r2.counters.l2_misses
        );
    }

    #[test]
    fn report_totals_are_consistent() {
        let (_, r) = run_version(KernelVersion::V2Sorted, ApiFrontend::Cuda);
        assert!((r.total_s - (r.h2d_s + r.build_s + r.mech_s + r.d2h_s)).abs() < 1e-15);
        assert!(r.mech_counters.total_flops() > 0.0);
        assert!(r.counters.total_flops() >= r.mech_counters.total_flops());
    }
}
