//! The complete GPU offload pipeline for the mechanical interaction
//! operation — what `bdm-sim` plugs in as its GPU environment.
//!
//! One step = H2D transfer of the needed SoA columns → device grid build
//! → mechanical kernel (version-dependent) → D2H transfer of the
//! displacements. Only "a subset of the agents' state data" crosses the
//! bus (paper §II): positions, diameters, adherence in; displacements out.
//!
//! The four paper versions plus the post-paper experiments:
//!
//! | version | precision | input order | kernel |
//! |---|---|---|---|
//! | `V0`       | FP64 | insertion     | [`MechKernel`] |
//! | `V1Fp32`   | FP32 | insertion     | [`MechKernel`] |
//! | `V2Sorted` | FP32 | Morton-sorted | [`MechKernel`] |
//! | `V3Shared` | FP32 | Morton-sorted | [`SharedMechKernel`] |
//! | `DynPar`   | FP32 | Morton-sorted | [`ParentKernel`]+[`ChildKernel`]+[`FinishKernel`] |
//! | `V4Csr`    | FP32 | Morton-sorted | [`CsrCountKernel`]+[`CsrScatterKernel`]+[`MechCsrKernel`] |
//!
//! # Device residency
//!
//! The pipeline owns a persistent [`DeviceState`]: every device buffer is
//! allocated once and grown geometrically, so steady-state steps perform
//! zero allocations. Two entry points share it:
//!
//! * [`MechanicalPipeline::step`] — the classic rebuilt step: upload the
//!   five columns, build, compute, download displacements. Buffers are
//!   reused but the device copy is treated as scratch.
//! * [`MechanicalPipeline::step_resident`] — agent state *stays* on the
//!   device across steps. The host hands in its (FP64) columns plus a
//!   UID column; the pipeline diffs them against its mirror of the
//!   device state and moves only the difference over the bus: appended
//!   births as ranged tail uploads, swap-remove deaths as an uploaded
//!   `(dst, src)` move list compacted *on the device*
//!   ([`CompactKernel`]), scalar host-side edits as element patches.
//!   Displacements are folded into the position columns on the device
//!   ([`IntegrateKernel`]) and only the three position columns come back
//!   for inspection. A steady-state step therefore uploads nothing.
//!
//! The resident path also maintains the grid incrementally: it keeps the
//! clamped voxel key of every agent and skips the whole grid build —
//! including version IV's counting sort and its PCIe scan round trip —
//! when no key changed since the last build. Skipping is bitwise safe
//! because both grid builds are pure functions of the (unchanged) keys.

use crate::counters::KernelCounters;
use crate::engine::FromWord;
use crate::frontend::{ApiFrontend, Runtime};
use crate::kernels::csr::{exclusive_scan_into, CsrCountKernel, CsrScatterKernel, MechCsrKernel};
use crate::kernels::dynpar::{ChildKernel, CompactKernel, FinishKernel, ParentKernel};
use crate::kernels::geom::GridGeom;
use crate::kernels::grid_build::{reset_grid_buffers, GridBuildKernel};
use crate::kernels::mech::MechKernel;
use crate::kernels::mech_shared::{shared_words_for, SharedMechKernel};
use crate::kernels::resident::IntegrateKernel;
use crate::mem::{DeviceAllocator, DeviceBuffer, DeviceWord};
use bdm_device::specs::SystemSpec;
use bdm_device::transfer::PcieModel;
use bdm_math::interaction::MechParams;
use bdm_math::{Aabb, Scalar, Vec3};
use std::collections::HashMap;

/// Which of the paper's kernel versions to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVersion {
    /// Straight FP64 port (paper "GPU version 0").
    V0,
    /// FP32 precision reduction (Improvement I).
    V1Fp32,
    /// FP32 + Morton-sorted state (Improvement II).
    V2Sorted,
    /// FP32 + sorted + shared-memory tiles (Improvement III — a
    /// regression, per the paper).
    V3Shared,
    /// FP32 + sorted + dynamic-parallelism neighbor-loop fan-out
    /// (the paper's §VI future-work hypothesis).
    DynPar,
    /// FP32 + sorted + CSR counting-sort grid (post-paper): the force
    /// kernel streams contiguous `cell_agents` slices instead of chasing
    /// per-agent successor links.
    V4Csr,
}

impl KernelVersion {
    /// Display label matching the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            KernelVersion::V0 => "GPU version 0",
            KernelVersion::V1Fp32 => "GPU version I (fp32)",
            KernelVersion::V2Sorted => "GPU version II (+zorder)",
            KernelVersion::V3Shared => "GPU version III (+shared)",
            KernelVersion::DynPar => "GPU dynpar (future work)",
            KernelVersion::V4Csr => "GPU version IV (+CSR)",
        }
    }

    /// All versions, in the order the paper introduces them (the
    /// post-paper CSR experiment last).
    pub const ALL: [KernelVersion; 6] = [
        KernelVersion::V0,
        KernelVersion::V1Fp32,
        KernelVersion::V2Sorted,
        KernelVersion::V3Shared,
        KernelVersion::DynPar,
        KernelVersion::V4Csr,
    ];

    /// Whether this version sorts agents along the Z-order curve.
    pub fn sorts(&self) -> bool {
        !matches!(self, KernelVersion::V0 | KernelVersion::V1Fp32)
    }

    /// Whether this version computes in single precision.
    pub fn fp32(&self) -> bool {
        !matches!(self, KernelVersion::V0)
    }
}

/// Timing + counters of one offloaded step.
#[derive(Debug, Clone)]
pub struct GpuStepReport {
    /// Host→device transfer seconds (modeled PCIe).
    pub h2d_s: f64,
    /// Device→host transfer seconds.
    pub d2h_s: f64,
    /// Grid-construction kernel seconds (for a resident step this also
    /// includes the state-sync work: compaction moves, tail uploads).
    pub build_s: f64,
    /// Mechanical kernel(s) seconds.
    pub mech_s: f64,
    /// Total modeled step time.
    pub total_s: f64,
    /// Merged counters across all launches of the step.
    pub counters: KernelCounters,
    /// Counters of the mechanical kernel alone (roofline input).
    pub mech_counters: KernelCounters,
    /// Host-side gather passes spent permuting columns for Improvement
    /// II: 5 on upload + 3 on the inverse at download for a sorting
    /// version, 0 when the caller's columns already arrived in
    /// `sort_curve` order (or the version does not sort). The host
    /// `reorder` operation keeps resident state in curve order exactly
    /// so this stays 0 and the upload degenerates to a straight memcpy.
    /// A resident step never gathers: device order is never disturbed.
    pub sort_gathers: u32,
    /// Host→device payload bytes this step actually moved. The pinned
    /// residency invariant: a steady-state resident step reports 0.
    pub bytes_h2d: u64,
    /// Device→host payload bytes this step moved.
    pub bytes_d2h: u64,
    /// Synchronous host round trips *inside* the step (device→host
    /// readback whose result gates the next launch): version IV's scan,
    /// version III's occupancy readback, dynpar's queue-length read.
    /// Each one is a pipeline stall on real hardware; the resident
    /// grid-skip path eliminates version IV's.
    pub midstep_syncs: u32,
    /// Whether this step ran with device-resident agent state.
    pub resident: bool,
}

impl GpuStepReport {
    /// Kernel-only seconds (the quantity Figs. 8–11 compare).
    pub fn kernel_s(&self) -> f64 {
        self.build_s + self.mech_s
    }

    /// Publish the step's timing breakdown and kernel counters into a
    /// metrics registry. Every time here is *modeled* (the trace-driven
    /// device and PCIe models), hence deterministic and gateable —
    /// unlike host wall clocks.
    pub fn publish_metrics(&self, labels: &[(&str, &str)], reg: &mut bdm_metrics::MetricsRegistry) {
        reg.observe("gpu.h2d_s", labels, self.h2d_s);
        reg.observe("gpu.d2h_s", labels, self.d2h_s);
        reg.observe("gpu.build_s", labels, self.build_s);
        reg.observe("gpu.mech_s", labels, self.mech_s);
        reg.observe("gpu.total_s", labels, self.total_s);
        reg.inc_counter("gpu.sort_gathers", labels, self.sort_gathers as f64);
        reg.inc_counter("gpu.bytes_h2d", labels, self.bytes_h2d as f64);
        reg.inc_counter("gpu.bytes_d2h", labels, self.bytes_d2h as f64);
        reg.inc_counter("gpu.midstep_syncs", labels, self.midstep_syncs as f64);
        reg.inc_counter(
            "gpu.resident_steps",
            labels,
            if self.resident { 1.0 } else { 0.0 },
        );
        self.counters.publish_metrics("gpu.step", labels, reg);
        self.mech_counters.publish_metrics("gpu.mech", labels, reg);
    }
}

/// Scene inputs of one step (host-side, always FP64 — BioDynaMo's storage
/// precision; the pipeline narrows internally for FP32 versions).
#[derive(Debug, Clone, Copy)]
pub struct SceneRef<'a> {
    /// Position columns.
    pub xs: &'a [f64],
    /// Y coordinates.
    pub ys: &'a [f64],
    /// Z coordinates.
    pub zs: &'a [f64],
    /// Diameters.
    pub diameters: &'a [f64],
    /// Adherence thresholds.
    pub adherences: &'a [f64],
    /// Simulation space.
    pub space: Aabb<f64>,
    /// Uniform-grid voxel edge (≥ the largest interaction radius).
    pub box_len: f64,
}

/// Per-step transfer/launch cost of one pipeline phase.
#[derive(Default)]
struct PhaseCost {
    counters: KernelCounters,
    secs: f64,
    h2d_bytes: u64,
    h2d_transfers: u32,
    d2h_bytes: u64,
    d2h_transfers: u32,
    midstep_syncs: u32,
}

/// Everything the pipeline keeps alive across steps for one scalar
/// width: the device buffers (allocated once, grown geometrically), the
/// host-side scratch (narrowed columns, scan offsets, download
/// staging), and the residency bookkeeping (a host mirror of the device
/// columns, the UID column identifying each device row, and the voxel
/// keys of the last grid build for the incremental-rebuild check).
struct DeviceState<R: Scalar + DeviceWord> {
    /// One bump allocator for the lifetime of the pipeline. Growth
    /// allocates fresh buffers and abandons the old ranges — addresses
    /// are never recycled, so the L2 model can never alias a stale
    /// line with a new buffer.
    alloc: DeviceAllocator,
    cap_agents: usize,
    cap_boxes: usize,
    cap_partials: usize,
    // Agent-sized device columns (allocated to `cap_agents`).
    px: DeviceBuffer<R>,
    py: DeviceBuffer<R>,
    pz: DeviceBuffer<R>,
    dd: DeviceBuffer<R>,
    da: DeviceBuffer<R>,
    ox: DeviceBuffer<R>,
    oy: DeviceBuffer<R>,
    oz: DeviceBuffer<R>,
    successors: DeviceBuffer<u32>,
    csr_agents: DeviceBuffer<u32>,
    queue: DeviceBuffer<u32>,
    /// `(dst, src)` pairs for on-device death compaction (2·cap).
    moves: DeviceBuffer<u32>,
    // Box-sized device buffers (allocated to `cap_boxes`).
    box_start: DeviceBuffer<u32>,
    box_length: DeviceBuffer<u32>,
    csr_cursor: DeviceBuffer<u32>,
    counts: DeviceBuffer<u32>,
    voxel_ids: DeviceBuffer<u32>,
    queue_count: DeviceBuffer<u32>,
    partials: DeviceBuffer<R>,
    // Host scratch, persistent so the steady state allocates nothing.
    hx: Vec<R>,
    hy: Vec<R>,
    hz: Vec<R>,
    hd: Vec<R>,
    ha: Vec<R>,
    /// Scan/occupancy readback staging (satellite of the mid-step
    /// stall fix: the scan no longer allocates per step).
    host_counts: Vec<u32>,
    starts: Vec<u32>,
    out_x: Vec<R>,
    out_y: Vec<R>,
    out_z: Vec<R>,
    perm_scratch: Vec<R>,
    // Residency bookkeeping.
    /// Device agent columns mirror `m*`/`uids` below.
    resident_valid: bool,
    /// Device grid buffers describe the *current* device positions.
    grid_valid: bool,
    /// Live agent count on the device.
    n: usize,
    mx: Vec<R>,
    my: Vec<R>,
    mz: Vec<R>,
    md: Vec<R>,
    ma: Vec<R>,
    uids: Vec<u64>,
    /// Clamped voxel keys at the last grid build (the incremental
    /// check: identical keys ⇒ identical grid ⇒ skip the build).
    prev_keys: Vec<u32>,
    keys_cur: Vec<u32>,
    prev_geom: Option<GridGeom<R>>,
    /// Version III occupancy cache, refreshed whenever the grid is.
    v3_non_empty: Vec<u32>,
    v3_block_dim: u32,
    uid_slot: HashMap<u64, u32>,
    moves_host: Vec<u32>,
}

impl<R: Scalar + DeviceWord> DeviceState<R> {
    fn new() -> Self {
        let mut alloc = DeviceAllocator::new();
        let queue_count = alloc.alloc::<u32>(1);
        let px = alloc.alloc::<R>(0);
        let py = alloc.alloc::<R>(0);
        let pz = alloc.alloc::<R>(0);
        let dd = alloc.alloc::<R>(0);
        let da = alloc.alloc::<R>(0);
        let ox = alloc.alloc::<R>(0);
        let oy = alloc.alloc::<R>(0);
        let oz = alloc.alloc::<R>(0);
        let successors = alloc.alloc::<u32>(0);
        let csr_agents = alloc.alloc::<u32>(0);
        let queue = alloc.alloc::<u32>(0);
        let moves = alloc.alloc::<u32>(0);
        let box_start = alloc.alloc::<u32>(0);
        let box_length = alloc.alloc::<u32>(0);
        let csr_cursor = alloc.alloc::<u32>(0);
        let counts = alloc.alloc::<u32>(0);
        let voxel_ids = alloc.alloc::<u32>(0);
        let partials = alloc.alloc::<R>(0);
        Self {
            alloc,
            cap_agents: 0,
            cap_boxes: 0,
            cap_partials: 0,
            px,
            py,
            pz,
            dd,
            da,
            ox,
            oy,
            oz,
            successors,
            csr_agents,
            queue,
            moves,
            box_start,
            box_length,
            csr_cursor,
            counts,
            voxel_ids,
            queue_count,
            partials,
            hx: Vec::new(),
            hy: Vec::new(),
            hz: Vec::new(),
            hd: Vec::new(),
            ha: Vec::new(),
            host_counts: Vec::new(),
            starts: Vec::new(),
            out_x: Vec::new(),
            out_y: Vec::new(),
            out_z: Vec::new(),
            perm_scratch: Vec::new(),
            resident_valid: false,
            grid_valid: false,
            n: 0,
            mx: Vec::new(),
            my: Vec::new(),
            mz: Vec::new(),
            md: Vec::new(),
            ma: Vec::new(),
            uids: Vec::new(),
            prev_keys: Vec::new(),
            keys_cur: Vec::new(),
            prev_geom: None,
            v3_non_empty: Vec::new(),
            v3_block_dim: 0,
            uid_slot: HashMap::new(),
            moves_host: Vec::new(),
        }
    }

    /// Grow the agent-sized buffers to hold `n` agents (geometric, so
    /// amortized O(1) allocations). Returns `true` when it reallocated —
    /// which drops residency: the new buffers hold nothing yet.
    fn ensure_agents(&mut self, n: usize) -> bool {
        if n <= self.cap_agents {
            return false;
        }
        let cap = n.max(self.cap_agents * 2).max(64);
        self.px = self.alloc.alloc::<R>(cap);
        self.py = self.alloc.alloc::<R>(cap);
        self.pz = self.alloc.alloc::<R>(cap);
        self.dd = self.alloc.alloc::<R>(cap);
        self.da = self.alloc.alloc::<R>(cap);
        self.ox = self.alloc.alloc::<R>(cap);
        self.oy = self.alloc.alloc::<R>(cap);
        self.oz = self.alloc.alloc::<R>(cap);
        self.successors = self.alloc.alloc::<u32>(cap);
        self.csr_agents = self.alloc.alloc::<u32>(cap);
        self.queue = self.alloc.alloc::<u32>(cap);
        self.moves = self.alloc.alloc::<u32>(2 * cap);
        self.cap_agents = cap;
        self.resident_valid = false;
        self.grid_valid = false;
        true
    }

    /// Grow the box-sized buffers to hold `b` voxels.
    fn ensure_boxes(&mut self, b: usize) -> bool {
        if b <= self.cap_boxes {
            return false;
        }
        let cap = b.max(self.cap_boxes * 2).max(64);
        self.box_start = self.alloc.alloc::<u32>(cap);
        self.box_length = self.alloc.alloc::<u32>(cap);
        self.csr_cursor = self.alloc.alloc::<u32>(cap);
        self.counts = self.alloc.alloc::<u32>(cap);
        self.voxel_ids = self.alloc.alloc::<u32>(cap);
        self.cap_boxes = cap;
        self.grid_valid = false;
        true
    }

    /// Grow the dynpar partial-force scratch to `len` words.
    fn ensure_partials(&mut self, len: usize) {
        if len <= self.cap_partials {
            return;
        }
        let cap = len.max(self.cap_partials * 2);
        self.partials = self.alloc.alloc::<R>(cap);
        self.cap_partials = cap;
    }

    /// Drop residency: the next resident step re-uploads everything.
    fn invalidate(&mut self) {
        self.resident_valid = false;
        self.grid_valid = false;
    }

    /// Upload the full narrowed columns and rebase the mirror on them.
    fn full_resync(&mut self, uids: &[u64], cost: &mut PhaseCost) {
        let n = self.hx.len();
        self.px.upload_at(0, &self.hx);
        self.py.upload_at(0, &self.hy);
        self.pz.upload_at(0, &self.hz);
        self.dd.upload_at(0, &self.hd);
        self.da.upload_at(0, &self.ha);
        cost.h2d_bytes += 5 * n as u64 * <R as DeviceWord>::BYTES as u64;
        cost.h2d_transfers += 5;
        self.mx.clear();
        self.mx.extend_from_slice(&self.hx);
        self.my.clear();
        self.my.extend_from_slice(&self.hy);
        self.mz.clear();
        self.mz.extend_from_slice(&self.hz);
        self.md.clear();
        self.md.extend_from_slice(&self.hd);
        self.ma.clear();
        self.ma.extend_from_slice(&self.ha);
        self.uids.clear();
        self.uids.extend_from_slice(uids);
        self.n = n;
        self.resident_valid = true;
        self.grid_valid = false;
    }
}

/// The two scalar widths a pipeline can hold resident state in. The
/// width is fixed by the kernel version, so in practice only one
/// variant is ever constructed per pipeline.
enum ResidentState {
    F32(DeviceState<f32>),
    F64(DeviceState<f64>),
}

/// Maps a scalar type to its slot in [`ResidentState`] (creating the
/// state on first use).
trait ResidentSlot: Scalar + DeviceWord + Sized {
    fn slot(state: &mut Option<ResidentState>) -> &mut DeviceState<Self>;
}

impl ResidentSlot for f32 {
    fn slot(state: &mut Option<ResidentState>) -> &mut DeviceState<f32> {
        if !matches!(state, Some(ResidentState::F32(_))) {
            *state = Some(ResidentState::F32(DeviceState::new()));
        }
        match state {
            Some(ResidentState::F32(s)) => s,
            _ => unreachable!(),
        }
    }
}

impl ResidentSlot for f64 {
    fn slot(state: &mut Option<ResidentState>) -> &mut DeviceState<f64> {
        if !matches!(state, Some(ResidentState::F64(_))) {
            *state = Some(ResidentState::F64(DeviceState::new()));
        }
        match state {
            Some(ResidentState::F64(s)) => s,
            _ => unreachable!(),
        }
    }
}

fn narrow_into<R: Scalar>(src: &[f64], dst: &mut Vec<R>) {
    dst.clear();
    dst.extend(src.iter().map(|&v| R::from_f64(v)));
}

/// Patch device elements that differ from the mirror; returns how many.
/// Each patch moves one index + one value over the bus.
fn patch_column<R: Scalar + DeviceWord>(
    buf: &DeviceBuffer<R>,
    host: &[R],
    mirror: &mut [R],
) -> u64 {
    let mut changed = 0u64;
    for i in 0..host.len() {
        if host[i] != mirror[i] {
            buf.write(i, host[i]);
            mirror[i] = host[i];
            changed += 1;
        }
    }
    changed
}

/// Device grid build: atomic list insertion for the paper versions; for
/// version IV, the two-pass counting sort with a host-side prefix sum
/// in between. The scan is a grid-wide dependency, so it reads the
/// counts back and re-uploads the offsets — a PCIe round trip (and a
/// mid-step sync) charged the same way version III's occupancy readback
/// is.
fn build_grid<R: Scalar + DeviceWord>(
    runtime: &Runtime,
    version: KernelVersion,
    st: &mut DeviceState<R>,
    n: usize,
    num_boxes: usize,
    geom: GridGeom<R>,
) -> PhaseCost {
    let mut cost = PhaseCost::default();
    if version == KernelVersion::V4Csr {
        st.counts.fill_at(0, num_boxes, 0);
        let count = runtime.dispatch(
            &CsrCountKernel {
                n,
                geom,
                pos_x: &st.px,
                pos_y: &st.py,
                pos_z: &st.pz,
                counts: &st.counts,
            },
            n,
            128,
            0,
        );
        cost.counters.merge(&count.counters);
        cost.secs += count.timing.total_s;

        st.host_counts.clear();
        st.host_counts.resize(num_boxes, 0);
        st.counts.download_at(0, &mut st.host_counts);
        cost.d2h_bytes += 4 * num_boxes as u64;
        cost.d2h_transfers += 1;
        cost.midstep_syncs += 1;
        exclusive_scan_into(&st.host_counts, &mut st.starts);
        st.csr_cursor.upload_at(0, &st.starts[..num_boxes]);
        cost.h2d_bytes += 4 * num_boxes as u64;
        cost.h2d_transfers += 1;

        let scatter = runtime.dispatch(
            &CsrScatterKernel {
                n,
                geom,
                pos_x: &st.px,
                pos_y: &st.py,
                pos_z: &st.pz,
                cursor: &st.csr_cursor,
                cell_agents: &st.csr_agents,
            },
            n,
            128,
            0,
        );
        cost.counters.merge(&scatter.counters);
        cost.secs += scatter.timing.total_s;
    } else {
        reset_grid_buffers(&st.box_start, &st.box_length);
        let build = runtime.dispatch(
            &GridBuildKernel {
                n,
                geom,
                pos_x: &st.px,
                pos_y: &st.py,
                pos_z: &st.pz,
                box_start: &st.box_start,
                box_length: &st.box_length,
                successors: &st.successors,
            },
            n,
            128,
            0,
        );
        cost.counters.merge(&build.counters);
        cost.secs += build.timing.total_s;
    }
    cost
}

/// The mechanical kernel(s) of one step. `refresh_occupancy` tells
/// version III whether the grid changed since its cached non-empty
/// voxel list (the occupancy readback is skipped when the resident path
/// skipped the build).
#[allow(clippy::too_many_arguments)]
fn run_mech<R: Scalar + DeviceWord + FromWord>(
    runtime: &Runtime,
    version: KernelVersion,
    system: &SystemSpec,
    dynpar_threshold: u32,
    st: &mut DeviceState<R>,
    n: usize,
    num_boxes: usize,
    geom: GridGeom<R>,
    params_r: MechParams<R>,
    refresh_occupancy: bool,
) -> PhaseCost {
    let mut cost = PhaseCost::default();
    match version {
        KernelVersion::V0 | KernelVersion::V1Fp32 | KernelVersion::V2Sorted => {
            let r = runtime.dispatch(
                &MechKernel {
                    n,
                    geom,
                    pos_x: &st.px,
                    pos_y: &st.py,
                    pos_z: &st.pz,
                    diameter: &st.dd,
                    adherence: &st.da,
                    box_start: &st.box_start,
                    successors: &st.successors,
                    out_x: &st.ox,
                    out_y: &st.oy,
                    out_z: &st.oz,
                    params: params_r,
                },
                n,
                128,
                0,
            );
            cost.counters.merge(&r.counters);
            cost.secs += r.timing.total_s;
        }
        KernelVersion::V4Csr => {
            let r = runtime.dispatch(
                &MechCsrKernel {
                    n,
                    geom,
                    pos_x: &st.px,
                    pos_y: &st.py,
                    pos_z: &st.pz,
                    diameter: &st.dd,
                    adherence: &st.da,
                    cell_ends: &st.csr_cursor,
                    cell_agents: &st.csr_agents,
                    out_x: &st.ox,
                    out_y: &st.oy,
                    out_z: &st.oz,
                    params: params_r,
                },
                n,
                128,
                0,
            );
            cost.counters.merge(&r.counters);
            cost.secs += r.timing.total_s;
        }
        KernelVersion::V3Shared => {
            if refresh_occupancy {
                // Host needs the voxel occupancy to enumerate non-empty
                // voxels and size the blocks — a D2H readback the fused
                // version avoids; charge it (and the stall).
                st.host_counts.clear();
                st.host_counts.resize(num_boxes, 0);
                st.box_length.download_at(0, &mut st.host_counts);
                cost.d2h_bytes += 4 * num_boxes as u64;
                cost.d2h_transfers += 1;
                cost.midstep_syncs += 1;
                st.v3_non_empty.clear();
                for b in 0..num_boxes as u32 {
                    if st.host_counts[b as usize] > 0 {
                        st.v3_non_empty.push(b);
                    }
                }
                let max_len = st.host_counts.iter().copied().max().unwrap_or(0);
                st.v3_block_dim = (max_len.max(28)).div_ceil(32) * 32;
                st.voxel_ids.upload_at(0, &st.v3_non_empty);
                cost.h2d_bytes += 4 * st.v3_non_empty.len() as u64;
                cost.h2d_transfers += 1;
            }
            let block_dim = st.v3_block_dim;
            let non_empty_len = st.v3_non_empty.len();

            let spec = system.gpu;
            // The tile is allocated statically for the worst case —
            // the paper's kernel cannot know per-voxel occupancy at
            // compile time. The near-full shared-memory footprint
            // limits residency to ~1 block/SM, which (together with
            // the cursor atomics and boundary-check divergence) is
            // why version III loses to version II.
            let tile_cap = ((spec.shared_mem_per_sm as usize / 8).saturating_sub(2) / 5).min(2048);
            let k = SharedMechKernel {
                geom,
                voxel_ids: &st.voxel_ids,
                pos_x: &st.px,
                pos_y: &st.py,
                pos_z: &st.pz,
                diameter: &st.dd,
                adherence: &st.da,
                box_start: &st.box_start,
                box_length: &st.box_length,
                successors: &st.successors,
                out_x: &st.ox,
                out_y: &st.oy,
                out_z: &st.oz,
                tile_cap,
                params: params_r,
            };
            let items = non_empty_len * block_dim as usize;
            let r = runtime.dispatch(&k, items, block_dim, shared_words_for(tile_cap) * 8);
            cost.counters.merge(&r.counters);
            cost.secs += r.timing.total_s;
        }
        KernelVersion::DynPar => {
            // The queue cursor persists across steps now — zero it.
            st.queue_count.fill_at(0, 1, 0);
            let parent = runtime.dispatch(
                &ParentKernel {
                    n,
                    geom,
                    pos_x: &st.px,
                    pos_y: &st.py,
                    pos_z: &st.pz,
                    diameter: &st.dd,
                    adherence: &st.da,
                    box_start: &st.box_start,
                    box_length: &st.box_length,
                    successors: &st.successors,
                    out_x: &st.ox,
                    out_y: &st.oy,
                    out_z: &st.oz,
                    queue: &st.queue,
                    queue_count: &st.queue_count,
                    threshold: dynpar_threshold,
                    params: params_r,
                },
                n,
                128,
                0,
            );
            cost.counters.merge(&parent.counters);
            cost.secs += parent.timing.total_s;

            let queue_len = st.queue_count.read(0) as usize;
            cost.midstep_syncs += 1;
            if queue_len > 0 {
                st.ensure_partials(queue_len * 27 * 3);
                // The child kernel only stores nonzero partials, so a
                // persistent scratch must be re-zeroed each launch.
                st.partials.fill_at(0, queue_len * 27 * 3, R::ZERO);
                let child = runtime.dispatch(
                    &ChildKernel {
                        queue_len,
                        geom,
                        pos_x: &st.px,
                        pos_y: &st.py,
                        pos_z: &st.pz,
                        diameter: &st.dd,
                        box_start: &st.box_start,
                        successors: &st.successors,
                        queue: &st.queue,
                        partials: &st.partials,
                        params: params_r,
                    },
                    queue_len * 27,
                    128,
                    0,
                );
                cost.counters.merge(&child.counters);
                cost.secs += child.timing.total_s;
                let finish = runtime.dispatch(
                    &FinishKernel {
                        queue_len,
                        queue: &st.queue,
                        partials: &st.partials,
                        adherence: &st.da,
                        out_x: &st.ox,
                        out_y: &st.oy,
                        out_z: &st.oz,
                        params: params_r,
                    },
                    queue_len,
                    128,
                    0,
                );
                cost.counters.merge(&finish.counters);
                cost.secs += finish.timing.total_s;
            }
        }
    }
    cost
}

/// The full offload pipeline.
pub struct MechanicalPipeline {
    system: SystemSpec,
    runtime: Runtime,
    version: KernelVersion,
    pcie: PcieModel,
    /// Persistent device + host state, created lazily on the first step.
    state: Option<ResidentState>,
    /// Candidate threshold for the dynamic-parallelism parent kernel.
    pub dynpar_threshold: u32,
    /// Space-filling curve used by the sorting versions (II, III,
    /// dynpar). Z-order is the paper's choice; Hilbert is the ablation.
    pub sort_curve: bdm_morton::Curve,
    /// Debug/ablation knob: make the resident path rebuild the grid
    /// every step even when no agent crossed a voxel boundary. The
    /// incremental skip must be bitwise-invisible, so flipping this
    /// never changes results (pinned by test).
    pub force_full_rebuild: bool,
}

impl MechanicalPipeline {
    /// Build a pipeline for a system/frontend/version combination.
    /// `trace_sample` = trace every n-th warp (1 = all; larger values
    /// bound simulation cost on big scenes).
    pub fn new(
        system: SystemSpec,
        frontend: ApiFrontend,
        version: KernelVersion,
        trace_sample: u64,
    ) -> Self {
        Self {
            system,
            runtime: Runtime::new(frontend, system.gpu, trace_sample),
            version,
            pcie: PcieModel::new(system.pcie_bandwidth, system.pcie_latency_s),
            state: None,
            dynpar_threshold: 96,
            sort_curve: bdm_morton::Curve::ZOrder,
            force_full_rebuild: false,
        }
    }

    /// The configured kernel version.
    pub fn version(&self) -> KernelVersion {
        self.version
    }

    /// The system being simulated.
    pub fn system(&self) -> &SystemSpec {
        &self.system
    }

    /// Drop device residency: the next [`Self::step_resident`] performs
    /// a full re-upload. Callers must invalidate after anything that
    /// reorders or rewrites host columns wholesale behind the UID
    /// column's back — the host `reorder` operation, checkpoint restore,
    /// a shard recut.
    pub fn invalidate_residency(&mut self) {
        match &mut self.state {
            Some(ResidentState::F32(s)) => s.invalidate(),
            Some(ResidentState::F64(s)) => s.invalidate(),
            None => {}
        }
    }

    /// Whether valid device-resident agent state exists right now: the
    /// next [`Self::step_resident`] may take the diff fast path instead
    /// of a full upload. `false` after construction, after
    /// [`Self::invalidate_residency`], and until the first resident step.
    pub fn is_resident(&self) -> bool {
        match &self.state {
            Some(ResidentState::F32(s)) => s.resident_valid,
            Some(ResidentState::F64(s)) => s.resident_valid,
            None => false,
        }
    }

    /// Total device bytes ever allocated (monotone; constant across
    /// steady-state steps — pinned by test).
    pub fn device_allocated_bytes(&self) -> u64 {
        match &self.state {
            Some(ResidentState::F32(s)) => s.alloc.allocated_bytes(),
            Some(ResidentState::F64(s)) => s.alloc.allocated_bytes(),
            None => 0,
        }
    }

    /// Execute one mechanical-interaction step. Returns per-agent
    /// displacements (in the caller's original agent order) and a report.
    ///
    /// Device buffers are reused across calls, but the device state is
    /// treated as scratch: everything is re-uploaded. For cross-step
    /// residency use [`Self::step_resident`].
    pub fn step(
        &mut self,
        scene: &SceneRef<'_>,
        params: &MechParams<f64>,
    ) -> (Vec<Vec3<f64>>, GpuStepReport) {
        // Invalidate the L2 between steps: each step re-uploads fresh
        // state, so cross-step line reuse would be an artifact.
        self.runtime.device().reset_l2();
        if self.version.fp32() {
            self.run::<f32>(scene, params)
        } else {
            self.run::<f64>(scene, params)
        }
    }

    /// Execute one step with device-resident agent state. `uids`
    /// identifies each column row (same order as the scene columns); the
    /// pipeline diffs against its device mirror and ships only changes:
    /// appended births, swap-removed deaths (compacted on the device),
    /// element-level host edits. Displacements are integrated on the
    /// device and the *new positions* (in the caller's order, which the
    /// device preserves) are returned. Steady state moves zero bytes
    /// host→device and skips the grid build when no agent crossed a
    /// voxel boundary.
    pub fn step_resident(
        &mut self,
        scene: &SceneRef<'_>,
        uids: &[u64],
        params: &MechParams<f64>,
    ) -> (Vec<Vec3<f64>>, GpuStepReport) {
        // No reset_l2: cross-step cache reuse is real for resident state.
        if self.version.fp32() {
            self.run_resident::<f32>(scene, uids, params)
        } else {
            self.run_resident::<f64>(scene, uids, params)
        }
    }

    fn run<R: Scalar + DeviceWord + FromWord + ResidentSlot>(
        &mut self,
        scene: &SceneRef<'_>,
        params: &MechParams<f64>,
    ) -> (Vec<Vec3<f64>>, GpuStepReport) {
        let n = scene.xs.len();
        assert!(n > 0, "empty scene");
        let params_r: MechParams<R> = params.cast();
        let space = Aabb::new(scene.space.min.cast::<R>(), scene.space.max.cast::<R>());
        let box_len = R::from_f64(scene.box_len);

        // Grid geometry (host-side, matches bdm_grid layout).
        let dims = {
            let e = space.extents();
            let dim = |len: R| -> u32 { ((len / box_len).ceil().to_f64() as u32).max(1) };
            [dim(e.x), dim(e.y), dim(e.z)]
        };
        let geom = GridGeom {
            dims,
            min: space.min,
            box_len,
        };
        let num_boxes = geom.num_boxes();

        let st = R::slot(&mut self.state);
        st.ensure_agents(n);
        st.ensure_boxes(num_boxes);
        // A rebuilt step overwrites the device columns below; whatever
        // mirror a previous resident run kept is stale now.
        st.resident_valid = false;
        st.grid_valid = false;

        narrow_into(scene.xs, &mut st.hx);
        narrow_into(scene.ys, &mut st.hy);
        narrow_into(scene.zs, &mut st.hz);
        narrow_into(scene.diameters, &mut st.hd);
        narrow_into(scene.adherences, &mut st.ha);

        // Improvement II: host-side space-filling-curve sort of the SoA
        // columns (Z-order by default; see `sort_curve`). Keys are
        // voxel keys clamped to the grid dims — the same keys the
        // resident `reorder` operation sorts by — so when the caller's
        // columns already arrive in curve order the keys come out
        // non-decreasing and the whole permutation (5 upload gathers +
        // 3 inverse gathers after download) is skipped: the upload is a
        // straight memcpy of the host columns.
        let mut sort_gathers = 0u32;
        let perm = if self.version.sorts() {
            let keys =
                bdm_morton::cell_keys(&st.hx, &st.hy, &st.hz, &space, box_len, self.sort_curve);
            if keys.is_sorted() {
                None
            } else {
                let p = bdm_soa::Permutation::sorting_by_key(&keys);
                for col in [&mut st.hx, &mut st.hy, &mut st.hz, &mut st.hd, &mut st.ha] {
                    p.apply_in_place(col, &mut st.perm_scratch);
                    sort_gathers += 1;
                }
                Some(p)
            }
        } else {
            None
        };

        // Upload the live prefix of the persistent columns.
        st.px.upload_at(0, &st.hx);
        st.py.upload_at(0, &st.hy);
        st.pz.upload_at(0, &st.hz);
        st.dd.upload_at(0, &st.hd);
        st.da.upload_at(0, &st.ha);
        let mut h2d_bytes = 5 * n as u64 * <R as DeviceWord>::BYTES as u64;
        let mut h2d_transfers = 5u32;
        let mut d2h_bytes = 3 * n as u64 * <R as DeviceWord>::BYTES as u64;
        let mut d2h_transfers = 3u32;

        let build = build_grid(&self.runtime, self.version, st, n, num_boxes, geom);
        let mech = run_mech(
            &self.runtime,
            self.version,
            &self.system,
            self.dynpar_threshold,
            st,
            n,
            num_boxes,
            geom,
            params_r,
            true,
        );
        h2d_bytes += build.h2d_bytes + mech.h2d_bytes;
        h2d_transfers += build.h2d_transfers + mech.h2d_transfers;
        d2h_bytes += build.d2h_bytes + mech.d2h_bytes;
        d2h_transfers += build.d2h_transfers + mech.d2h_transfers;
        let midstep_syncs = build.midstep_syncs + mech.midstep_syncs;

        // Download and (if sorted) restore the caller's agent order.
        st.out_x.clear();
        st.out_x.resize(n, R::ZERO);
        st.out_y.clear();
        st.out_y.resize(n, R::ZERO);
        st.out_z.clear();
        st.out_z.resize(n, R::ZERO);
        st.ox.download_at(0, &mut st.out_x);
        st.oy.download_at(0, &mut st.out_y);
        st.oz.download_at(0, &mut st.out_z);
        if let Some(p) = &perm {
            let inv = p.inverse();
            for col in [&mut st.out_x, &mut st.out_y, &mut st.out_z] {
                inv.apply_in_place(col, &mut st.perm_scratch);
                sort_gathers += 1;
            }
        }
        let displacements: Vec<Vec3<f64>> = (0..n)
            .map(|i| {
                Vec3::new(
                    st.out_x[i].to_f64(),
                    st.out_y[i].to_f64(),
                    st.out_z[i].to_f64(),
                )
            })
            .collect();

        let h2d_s = self.pcie.transfers_time(h2d_transfers, h2d_bytes);
        let d2h_s = self.pcie.transfers_time(d2h_transfers, d2h_bytes);
        let mut counters = build.counters.clone();
        counters.merge(&mech.counters);
        let report = GpuStepReport {
            h2d_s,
            d2h_s,
            build_s: build.secs,
            mech_s: mech.secs,
            total_s: h2d_s + build.secs + mech.secs + d2h_s,
            counters,
            mech_counters: mech.counters,
            sort_gathers,
            bytes_h2d: h2d_bytes,
            bytes_d2h: d2h_bytes,
            midstep_syncs,
            resident: false,
        };
        (displacements, report)
    }

    fn run_resident<R: Scalar + DeviceWord + FromWord + ResidentSlot>(
        &mut self,
        scene: &SceneRef<'_>,
        uids: &[u64],
        params: &MechParams<f64>,
    ) -> (Vec<Vec3<f64>>, GpuStepReport) {
        let n = scene.xs.len();
        assert!(n > 0, "empty scene");
        assert_eq!(uids.len(), n, "uid column length mismatch");
        let params_r: MechParams<R> = params.cast();
        let space = Aabb::new(scene.space.min.cast::<R>(), scene.space.max.cast::<R>());
        let box_len = R::from_f64(scene.box_len);
        let dims = {
            let e = space.extents();
            let dim = |len: R| -> u32 { ((len / box_len).ceil().to_f64() as u32).max(1) };
            [dim(e.x), dim(e.y), dim(e.z)]
        };
        let geom = GridGeom {
            dims,
            min: space.min,
            box_len,
        };
        let num_boxes = geom.num_boxes();

        let force_full = self.force_full_rebuild;
        let st = R::slot(&mut self.state);
        st.ensure_agents(n);
        st.ensure_boxes(num_boxes);

        narrow_into(scene.xs, &mut st.hx);
        narrow_into(scene.ys, &mut st.hy);
        narrow_into(scene.zs, &mut st.hz);
        narrow_into(scene.diameters, &mut st.hd);
        narrow_into(scene.adherences, &mut st.ha);

        // --- Sync host → device (only the difference crosses the bus).
        let mut sync = PhaseCost::default();
        if !st.resident_valid {
            st.full_resync(uids, &mut sync);
        } else {
            let mut resynced = false;
            if uids == st.uids.as_slice() {
                // No structural change; scalar edits handled below.
            } else if n > st.n && uids[..st.n] == st.uids[..] {
                // Births appended: upload only the new tail rows.
                let add = n - st.n;
                st.px.upload_at(st.n, &st.hx[st.n..]);
                st.py.upload_at(st.n, &st.hy[st.n..]);
                st.pz.upload_at(st.n, &st.hz[st.n..]);
                st.dd.upload_at(st.n, &st.hd[st.n..]);
                st.da.upload_at(st.n, &st.ha[st.n..]);
                sync.h2d_bytes += 5 * add as u64 * <R as DeviceWord>::BYTES as u64;
                sync.h2d_transfers += 5;
                st.mx.extend_from_slice(&st.hx[st.n..]);
                st.my.extend_from_slice(&st.hy[st.n..]);
                st.mz.extend_from_slice(&st.hz[st.n..]);
                st.md.extend_from_slice(&st.hd[st.n..]);
                st.ma.extend_from_slice(&st.ha[st.n..]);
                st.uids.extend_from_slice(&uids[st.n..]);
                st.n = n;
                st.grid_valid = false;
            } else if n < st.n {
                // Deaths: the host's swap-remove leaves a short
                // `(dst, src)` move list with every source in the
                // truncated tail. Upload the list, compact on-device.
                st.uid_slot.clear();
                for (slot, &u) in st.uids.iter().enumerate() {
                    st.uid_slot.insert(u, slot as u32);
                }
                st.moves_host.clear();
                let mut compactable = true;
                for (i, &u) in uids.iter().enumerate() {
                    if u == st.uids[i] {
                        continue;
                    }
                    match st.uid_slot.get(&u) {
                        Some(&src) if src as usize >= n => {
                            st.moves_host.push(i as u32);
                            st.moves_host.push(src);
                        }
                        _ => {
                            compactable = false;
                            break;
                        }
                    }
                }
                if compactable {
                    let n_moves = st.moves_host.len() / 2;
                    if n_moves > 0 {
                        st.moves.upload_at(0, &st.moves_host);
                        sync.h2d_bytes += st.moves_host.len() as u64 * 4;
                        sync.h2d_transfers += 1;
                        let r = self.runtime.dispatch(
                            &CompactKernel {
                                n_moves,
                                moves: &st.moves,
                                pos_x: &st.px,
                                pos_y: &st.py,
                                pos_z: &st.pz,
                                diameter: &st.dd,
                                adherence: &st.da,
                            },
                            n_moves,
                            128,
                            0,
                        );
                        sync.counters.merge(&r.counters);
                        sync.secs += r.timing.total_s;
                        for k in 0..n_moves {
                            let dst = st.moves_host[2 * k] as usize;
                            let src = st.moves_host[2 * k + 1] as usize;
                            st.mx[dst] = st.mx[src];
                            st.my[dst] = st.my[src];
                            st.mz[dst] = st.mz[src];
                            st.md[dst] = st.md[src];
                            st.ma[dst] = st.ma[src];
                            st.uids[dst] = st.uids[src];
                        }
                    }
                    st.mx.truncate(n);
                    st.my.truncate(n);
                    st.mz.truncate(n);
                    st.md.truncate(n);
                    st.ma.truncate(n);
                    st.uids.truncate(n);
                    st.n = n;
                    st.grid_valid = false;
                } else {
                    st.full_resync(uids, &mut sync);
                    resynced = true;
                }
            } else {
                // Reorder or unknown churn: start over.
                st.full_resync(uids, &mut sync);
                resynced = true;
            }
            if !resynced {
                // Element-level host edits (growth, chemotaxis nudges):
                // patch individual device words. Each costs an index +
                // a value on the wire; a quiet column costs nothing.
                let mut patched_cols = 0u32;
                let mut patched = 0u64;
                for (buf, host, mirror) in [
                    (&st.px, &st.hx, &mut st.mx),
                    (&st.py, &st.hy, &mut st.my),
                    (&st.pz, &st.hz, &mut st.mz),
                    (&st.dd, &st.hd, &mut st.md),
                    (&st.da, &st.ha, &mut st.ma),
                ] {
                    let c = patch_column(buf, host, mirror);
                    if c > 0 {
                        patched_cols += 1;
                        patched += c;
                    }
                }
                sync.h2d_bytes += patched * (4 + <R as DeviceWord>::BYTES as u64);
                sync.h2d_transfers += patched_cols;
            }
        }

        // --- Incremental grid maintenance: recompute the clamped voxel
        // key of every (mirrored) agent; identical keys ⇒ the grid the
        // device already holds is still exact ⇒ skip the build (and,
        // for version IV, the counting sort + scan round trip).
        st.keys_cur.clear();
        for i in 0..n {
            let p = Vec3::new(st.mx[i], st.my[i], st.mz[i]);
            st.keys_cur.push(geom.box_index(p) as u32);
        }
        let rebuild = !(st.grid_valid
            && !force_full
            && st.prev_geom == Some(geom)
            && st.keys_cur == st.prev_keys);
        let mut build = PhaseCost::default();
        if rebuild {
            build = build_grid(&self.runtime, self.version, st, n, num_boxes, geom);
            std::mem::swap(&mut st.prev_keys, &mut st.keys_cur);
            st.prev_geom = Some(geom);
            st.grid_valid = true;
        }

        let mut mech = run_mech(
            &self.runtime,
            self.version,
            &self.system,
            self.dynpar_threshold,
            st,
            n,
            num_boxes,
            geom,
            params_r,
            rebuild,
        );

        // --- Fold displacements into positions on the device.
        let integ = self.runtime.dispatch(
            &IntegrateKernel {
                n,
                pos_x: &st.px,
                pos_y: &st.py,
                pos_z: &st.pz,
                disp_x: &st.ox,
                disp_y: &st.oy,
                disp_z: &st.oz,
            },
            n,
            128,
            0,
        );
        mech.counters.merge(&integ.counters);
        mech.secs += integ.timing.total_s;

        // --- Inspect: only the three position columns come back.
        st.out_x.clear();
        st.out_x.resize(n, R::ZERO);
        st.out_y.clear();
        st.out_y.resize(n, R::ZERO);
        st.out_z.clear();
        st.out_z.resize(n, R::ZERO);
        st.px.download_at(0, &mut st.out_x);
        st.py.download_at(0, &mut st.out_y);
        st.pz.download_at(0, &mut st.out_z);
        let d2h_bytes =
            build.d2h_bytes + mech.d2h_bytes + 3 * n as u64 * <R as DeviceWord>::BYTES as u64;
        let d2h_transfers = build.d2h_transfers + mech.d2h_transfers + 3;
        st.mx.clear();
        st.mx.extend_from_slice(&st.out_x);
        st.my.clear();
        st.my.extend_from_slice(&st.out_y);
        st.mz.clear();
        st.mz.extend_from_slice(&st.out_z);
        let positions: Vec<Vec3<f64>> = (0..n)
            .map(|i| {
                Vec3::new(
                    st.out_x[i].to_f64(),
                    st.out_y[i].to_f64(),
                    st.out_z[i].to_f64(),
                )
            })
            .collect();

        let h2d_bytes = sync.h2d_bytes + build.h2d_bytes + mech.h2d_bytes;
        let h2d_transfers = sync.h2d_transfers + build.h2d_transfers + mech.h2d_transfers;
        let h2d_s = self.pcie.transfers_time(h2d_transfers, h2d_bytes);
        let d2h_s = self.pcie.transfers_time(d2h_transfers, d2h_bytes);
        let build_s = sync.secs + build.secs;
        let mut build_counters = sync.counters;
        build_counters.merge(&build.counters);
        let mut counters = build_counters.clone();
        counters.merge(&mech.counters);
        let report = GpuStepReport {
            h2d_s,
            d2h_s,
            build_s,
            mech_s: mech.secs,
            total_s: h2d_s + build_s + mech.secs + d2h_s,
            counters,
            mech_counters: mech.counters,
            sort_gathers: 0,
            bytes_h2d: h2d_bytes,
            bytes_d2h: d2h_bytes,
            midstep_syncs: sync.midstep_syncs + build.midstep_syncs + mech.midstep_syncs,
            resident: true,
        };
        (positions, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdm_device::specs::SYSTEM_A;
    use bdm_math::SplitMix64;

    type SceneCols = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

    fn scene(n: usize, extent: f64, seed: u64) -> SceneCols {
        let mut rng = SplitMix64::new(seed);
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        let zs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        (xs, ys, zs, vec![1.0; n], vec![0.01; n])
    }

    fn split(positions: &[Vec3<f64>]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        (
            positions.iter().map(|p| p.x).collect(),
            positions.iter().map(|p| p.y).collect(),
            positions.iter().map(|p| p.z).collect(),
        )
    }

    fn run_version(v: KernelVersion, frontend: ApiFrontend) -> (Vec<Vec3<f64>>, GpuStepReport) {
        let n = 400;
        let extent = 8.0;
        let (xs, ys, zs, dm, ad) = scene(n, extent, 7);
        let sr = SceneRef {
            xs: &xs,
            ys: &ys,
            zs: &zs,
            diameters: &dm,
            adherences: &ad,
            space: Aabb::new(Vec3::zero(), Vec3::splat(extent)),
            box_len: 1.0,
        };
        let mut p = MechanicalPipeline::new(SYSTEM_A, frontend, v, 1);
        p.step(&sr, &MechParams::default_params())
    }

    #[test]
    fn all_versions_agree_functionally() {
        let (base, _) = run_version(KernelVersion::V0, ApiFrontend::Cuda);
        assert!(base.iter().any(|d| *d != Vec3::zero()), "static scene?");
        for v in [
            KernelVersion::V1Fp32,
            KernelVersion::V2Sorted,
            KernelVersion::V3Shared,
            KernelVersion::DynPar,
            KernelVersion::V4Csr,
        ] {
            let (got, _) = run_version(v, ApiFrontend::Cuda);
            let mut max_err = 0.0f64;
            for i in 0..base.len() {
                max_err = max_err.max((base[i] - got[i]).norm());
            }
            // FP32 + reassociation tolerance.
            assert!(max_err < 1e-3, "{:?} deviates: {max_err}", v);
        }
    }

    #[test]
    fn frontends_agree() {
        let (cuda, _) = run_version(KernelVersion::V2Sorted, ApiFrontend::Cuda);
        let (opencl, _) = run_version(KernelVersion::V2Sorted, ApiFrontend::OpenCl);
        for i in 0..cuda.len() {
            assert_eq!(cuda[i], opencl[i]);
        }
    }

    #[test]
    fn fp32_reduces_transfer_bytes() {
        let (_, r64) = run_version(KernelVersion::V0, ApiFrontend::Cuda);
        let (_, r32) = run_version(KernelVersion::V1Fp32, ApiFrontend::Cuda);
        // Wire time scales with element width (same latency terms).
        assert!(r64.h2d_s > r32.h2d_s);
        assert!(r64.d2h_s > r32.d2h_s);
        assert!(r64.bytes_h2d > r32.bytes_h2d);
    }

    #[test]
    fn fp32_is_faster_than_fp64() {
        let (_, r64) = run_version(KernelVersion::V0, ApiFrontend::Cuda);
        let (_, r32) = run_version(KernelVersion::V1Fp32, ApiFrontend::Cuda);
        assert!(
            r32.mech_s < r64.mech_s,
            "fp32 {} should beat fp64 {}",
            r32.mech_s,
            r64.mech_s
        );
    }

    #[test]
    fn version_helpers() {
        assert!(!KernelVersion::V0.fp32());
        assert!(!KernelVersion::V0.sorts());
        assert!(KernelVersion::V1Fp32.fp32());
        assert!(!KernelVersion::V1Fp32.sorts());
        for v in [
            KernelVersion::V2Sorted,
            KernelVersion::V3Shared,
            KernelVersion::DynPar,
            KernelVersion::V4Csr,
        ] {
            assert!(v.fp32() && v.sorts(), "{v:?}");
        }
        // Labels are unique (the benchmark tables key on them).
        let labels: std::collections::HashSet<&str> =
            KernelVersion::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(labels.len(), KernelVersion::ALL.len());
    }

    #[test]
    fn hilbert_sorting_pipeline_matches_zorder() {
        let n = 300;
        let extent = 8.0;
        let (xs, ys, zs, dm, ad) = scene(n, extent, 13);
        let sr = SceneRef {
            xs: &xs,
            ys: &ys,
            zs: &zs,
            diameters: &dm,
            adherences: &ad,
            space: Aabb::new(Vec3::zero(), Vec3::splat(extent)),
            box_len: 1.0,
        };
        let params = MechParams::default_params();
        let mut z =
            MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, KernelVersion::V2Sorted, 1);
        let mut h =
            MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, KernelVersion::V2Sorted, 1);
        h.sort_curve = bdm_morton::Curve::Hilbert;
        let (dz, _) = z.step(&sr, &params);
        let (dh, _) = h.step(&sr, &params);
        // The curve changes only iteration order: FP32 reassociation noise.
        let mut max_err = 0.0f64;
        for i in 0..n {
            max_err = max_err.max((dz[i] - dh[i]).norm());
        }
        assert!(max_err < 1e-4, "curves disagree by {max_err}");
    }

    /// Acceptance pin for the host-reorder integration: a scrambled
    /// scene costs a sorting version exactly 8 gather passes (5 column
    /// uploads + 3 inverse downloads); a scene whose columns already
    /// arrive in `sort_curve` order costs 0 — the pipeline detects the
    /// non-decreasing keys and uploads the columns as-is. Non-sorting
    /// versions never gather. And the resident path tops both: a
    /// steady-state resident step performs 0 gathers *and* 0 upload
    /// bytes — the agent columns never cross the bus again.
    #[test]
    fn presorted_input_skips_the_sort_gathers() {
        let n = 500;
        let extent = 8.0;
        let (mut xs, mut ys, mut zs, dm, ad) = scene(n, extent, 21);
        let space = Aabb::new(Vec3::zero(), Vec3::splat(extent));
        let params = MechParams::default_params();
        let pipe = |v| MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, v, 1);

        let (sx, sy, sz) = (xs.clone(), ys.clone(), zs.clone());
        let scrambled = SceneRef {
            xs: &sx,
            ys: &sy,
            zs: &sz,
            diameters: &dm,
            adherences: &ad,
            space,
            box_len: 1.0,
        };
        let (_, r) = pipe(KernelVersion::V2Sorted).step(&scrambled, &params);
        assert_eq!(
            r.sort_gathers, 8,
            "scrambled input must pay the full permutation"
        );
        let (_, r0) = pipe(KernelVersion::V1Fp32).step(&scrambled, &params);
        assert_eq!(r0.sort_gathers, 0, "non-sorting version never gathers");

        // Pre-sort the host columns along the same curve — what the
        // resident `reorder` operation does between steps.
        let keys = bdm_morton::cell_keys(&xs, &ys, &zs, &space, 1.0, bdm_morton::Curve::ZOrder);
        let p = bdm_soa::Permutation::sorting_by_key(&keys);
        let mut scratch = Vec::new();
        for col in [&mut xs, &mut ys, &mut zs] {
            p.apply_in_place(col, &mut scratch);
        }
        let sorted = SceneRef {
            xs: &xs,
            ys: &ys,
            zs: &zs,
            diameters: &dm,
            adherences: &ad,
            space,
            box_len: 1.0,
        };
        let (_, rs) = pipe(KernelVersion::V2Sorted).step(&sorted, &params);
        assert_eq!(
            rs.sort_gathers, 0,
            "curve-ordered input must skip the permutation"
        );

        // Resident path: the first step uploads the columns; a
        // steady-state step (host columns == device mirror) uploads
        // nothing at all.
        let uids: Vec<u64> = (0..n as u64).collect();
        let mut rp = pipe(KernelVersion::V2Sorted);
        let (p1, r1) = rp.step_resident(&sorted, &uids, &params);
        assert!(r1.resident);
        assert!(r1.bytes_h2d > 0, "first resident step uploads the columns");
        let (x2, y2, z2) = split(&p1);
        let scene2 = SceneRef {
            xs: &x2,
            ys: &y2,
            zs: &z2,
            diameters: &dm,
            adherences: &ad,
            space,
            box_len: 1.0,
        };
        let (_, r2) = rp.step_resident(&scene2, &uids, &params);
        assert_eq!(r2.sort_gathers, 0, "resident step never gathers");
        assert_eq!(
            r2.bytes_h2d, 0,
            "steady-state resident step must move zero bytes host->device"
        );
    }

    /// Version IV's claim: streaming CSR slices coalesces where the
    /// linked-list successor chases cannot, so the step moves fewer
    /// 128-byte transactions through the L2 and DRAM than version II —
    /// even after paying for the extra build pass and scan round trip.
    #[test]
    fn v4_csr_reduces_memory_transactions_vs_v2() {
        let n = 3000;
        let extent = 10.0;
        let (xs, ys, zs, dm, ad) = scene(n, extent, 42);
        let sr = SceneRef {
            xs: &xs,
            ys: &ys,
            zs: &zs,
            diameters: &dm,
            adherences: &ad,
            space: Aabb::new(Vec3::zero(), Vec3::splat(extent)),
            box_len: 1.0,
        };
        let params = MechParams::default_params();
        let run = |v: KernelVersion| {
            MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, v, 1)
                .step(&sr, &params)
                .1
        };
        let r2 = run(KernelVersion::V2Sorted);
        let r4 = run(KernelVersion::V4Csr);
        // The force kernel alone: strictly fewer global transactions and
        // fewer DRAM lines.
        assert!(
            r4.mech_counters.global_transactions < r2.mech_counters.global_transactions,
            "CSR mech transactions {} !< linked {}",
            r4.mech_counters.global_transactions,
            r2.mech_counters.global_transactions
        );
        assert!(
            r4.mech_counters.l2_misses <= r2.mech_counters.l2_misses,
            "CSR mech DRAM lines {} !<= linked {}",
            r4.mech_counters.l2_misses,
            r2.mech_counters.l2_misses
        );
        // Whole step (build included): still ahead.
        assert!(
            r4.counters.global_transactions < r2.counters.global_transactions,
            "CSR step transactions {} !< linked {}",
            r4.counters.global_transactions,
            r2.counters.global_transactions
        );
        assert!(
            r4.counters.l2_misses <= r2.counters.l2_misses,
            "CSR step DRAM lines {} !<= linked {}",
            r4.counters.l2_misses,
            r2.counters.l2_misses
        );
        // The CSR scan is the only mid-step stall in the rebuilt path.
        assert_eq!(r4.midstep_syncs, 1);
        assert_eq!(r2.midstep_syncs, 0);
    }

    #[test]
    fn report_totals_are_consistent() {
        let (_, r) = run_version(KernelVersion::V2Sorted, ApiFrontend::Cuda);
        assert!((r.total_s - (r.h2d_s + r.build_s + r.mech_s + r.d2h_s)).abs() < 1e-15);
        assert!(r.mech_counters.total_flops() > 0.0);
        assert!(r.counters.total_flops() >= r.mech_counters.total_flops());
    }

    /// The resident path must be bitwise-invisible: a pipeline that
    /// keeps state on the device (skipping re-uploads, compacting
    /// deaths on-device, skipping grid builds) produces exactly the
    /// positions of a pipeline forced to re-upload and rebuild every
    /// step — across births, deaths, and host-side edits mid-sequence.
    #[test]
    fn resident_trajectory_matches_full_rebuild_bitwise() {
        for v in KernelVersion::ALL {
            let params = MechParams::default_params();
            let extent = 8.0;
            let space = Aabb::new(Vec3::zero(), Vec3::splat(extent));
            let (mut xs, mut ys, mut zs, mut dm, mut ad) = scene(150, extent, 99);
            let mut uids: Vec<u64> = (0..150).collect();
            let mut next_uid = 150u64;
            let mut a = MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, v, 1);
            let mut b = MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, v, 1);
            b.force_full_rebuild = true;
            for step in 0..6 {
                let sr = SceneRef {
                    xs: &xs,
                    ys: &ys,
                    zs: &zs,
                    diameters: &dm,
                    adherences: &ad,
                    space,
                    box_len: 1.0,
                };
                let (pa, ra) = a.step_resident(&sr, &uids, &params);
                b.invalidate_residency();
                let (pb, _) = b.step_resident(&sr, &uids, &params);
                assert_eq!(pa.len(), pb.len());
                for i in 0..pa.len() {
                    assert_eq!(pa[i], pb[i], "{v:?} step {step} agent {i}");
                }
                if step == 3 && !matches!(v, KernelVersion::V4Csr | KernelVersion::V3Shared) {
                    // The death step uploads exactly the move list
                    // (3 moves x 2 u32), not the agent columns. (IV
                    // re-uploads its scan offsets and III its non-empty
                    // voxel list after the rebuild deaths force.)
                    assert_eq!(
                        ra.bytes_h2d, 24,
                        "{v:?}: death step must upload only the move list"
                    );
                }
                for (i, p) in pa.iter().enumerate() {
                    xs[i] = p.x;
                    ys[i] = p.y;
                    zs[i] = p.z;
                }
                match step {
                    1 => {
                        // Births: appended rows with fresh uids.
                        let mut rng = SplitMix64::new(1234);
                        for _ in 0..12 {
                            xs.push(rng.uniform(0.0, extent));
                            ys.push(rng.uniform(0.0, extent));
                            zs.push(rng.uniform(0.0, extent));
                            dm.push(1.0);
                            ad.push(0.01);
                            uids.push(next_uid);
                            next_uid += 1;
                        }
                    }
                    2 => {
                        // Deaths: swap-remove (what ResourceManager
                        // does), sources all in the truncated tail.
                        for &i in &[40usize, 17, 3] {
                            xs.swap_remove(i);
                            ys.swap_remove(i);
                            zs.swap_remove(i);
                            dm.swap_remove(i);
                            ad.swap_remove(i);
                            uids.swap_remove(i);
                        }
                    }
                    3 => {
                        // Host-side scalar edits: a chemotaxis-style
                        // nudge across voxel boundaries + growth.
                        xs[5] += 2.5;
                        ys[9] -= 1.5;
                        for d in dm.iter_mut().take(20) {
                            *d *= 1.05;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// When no agent crossed a voxel boundary since the last build, the
    /// resident step skips the grid build entirely — for version IV
    /// that includes the counting sort and its scan round trip (the
    /// only mid-step sync of that version). Results stay bitwise
    /// identical to a forced rebuild.
    #[test]
    fn no_crossing_step_skips_the_grid_build() {
        // Agents 4.0 apart with diameter 1.0 never interact: zero
        // forces, zero displacement, keys frozen after step 1.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                for k in 0..4 {
                    xs.push(1.0 + 4.0 * i as f64);
                    ys.push(1.0 + 4.0 * j as f64);
                    zs.push(1.0 + 4.0 * k as f64);
                }
            }
        }
        let n = xs.len();
        let dm = vec![1.0; n];
        let ad = vec![0.01; n];
        let space = Aabb::new(Vec3::zero(), Vec3::splat(16.0));
        let uids: Vec<u64> = (0..n as u64).collect();
        let params = MechParams::default_params();
        let sr = SceneRef {
            xs: &xs,
            ys: &ys,
            zs: &zs,
            diameters: &dm,
            adherences: &ad,
            space,
            box_len: 2.0,
        };
        for v in KernelVersion::ALL {
            let mut p = MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, v, 1);
            let mut f = MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, v, 1);
            f.force_full_rebuild = true;
            let (p1, r1) = p.step_resident(&sr, &uids, &params);
            let (q1, _) = f.step_resident(&sr, &uids, &params);
            assert!(r1.build_s > 0.0, "{v:?}: first step must build the grid");
            let (x2, y2, z2) = split(&p1);
            let sr2 = SceneRef {
                xs: &x2,
                ys: &y2,
                zs: &z2,
                diameters: &dm,
                adherences: &ad,
                space,
                box_len: 2.0,
            };
            let (p2, r2) = p.step_resident(&sr2, &uids, &params);
            let (q2, rf2) = f.step_resident(&sr2, &uids, &params);
            assert_eq!(
                r2.build_s, 0.0,
                "{v:?}: no-crossing step must skip the build"
            );
            assert!(rf2.build_s > 0.0, "{v:?}: forced rebuild must not skip");
            assert_eq!(r2.bytes_h2d, 0, "{v:?}: frozen scene uploads nothing");
            if v == KernelVersion::V4Csr {
                assert_eq!(
                    r2.midstep_syncs, 0,
                    "skipping the counting sort removes the scan stall"
                );
                assert_eq!(rf2.midstep_syncs, 1);
            }
            // Skip is bitwise-invisible.
            assert_eq!(p1, q1, "{v:?}");
            assert_eq!(p2, q2, "{v:?}");
        }
    }

    /// Satellite pin: steady-state steps allocate no device memory —
    /// buffers are created once and reused, for both entry points.
    #[test]
    fn steady_state_steps_do_not_grow_device_allocations() {
        let n = 200;
        let extent = 8.0;
        let (xs, ys, zs, dm, ad) = scene(n, extent, 5);
        let space = Aabb::new(Vec3::zero(), Vec3::splat(extent));
        let params = MechParams::default_params();
        let uids: Vec<u64> = (0..n as u64).collect();
        let sr = SceneRef {
            xs: &xs,
            ys: &ys,
            zs: &zs,
            diameters: &dm,
            adherences: &ad,
            space,
            box_len: 1.0,
        };

        let mut p = MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, KernelVersion::V4Csr, 1);
        let (mut pos, _) = p.step_resident(&sr, &uids, &params);
        let bytes = p.device_allocated_bytes();
        assert!(bytes > 0);
        for _ in 0..4 {
            let (x2, y2, z2) = split(&pos);
            let sr2 = SceneRef {
                xs: &x2,
                ys: &y2,
                zs: &z2,
                diameters: &dm,
                adherences: &ad,
                space,
                box_len: 1.0,
            };
            let (np, r) = p.step_resident(&sr2, &uids, &params);
            assert!(r.resident);
            assert_eq!(
                p.device_allocated_bytes(),
                bytes,
                "resident steady state must not allocate"
            );
            pos = np;
        }

        let mut q =
            MechanicalPipeline::new(SYSTEM_A, ApiFrontend::Cuda, KernelVersion::V2Sorted, 1);
        let _ = q.step(&sr, &params);
        let b1 = q.device_allocated_bytes();
        let _ = q.step(&sr, &params);
        assert_eq!(
            q.device_allocated_bytes(),
            b1,
            "rebuilt path must reuse its buffers across steps"
        );
    }
}
