//! CUDA-style and OpenCL-style launch frontends.
//!
//! The paper implements the uniform-grid mechanical kernel twice — in CUDA
//! and in OpenCL — "to address GPUs from all major vendors" (§IV-B), and
//! reports that both runtimes drive the same algorithm (results shown are
//! from the CUDA runtime). The reproduction mirrors that structure: two
//! thin frontends with each API's launch vocabulary, driving the identical
//! simulated engine. Beyond vocabulary, the observable difference is the
//! OpenCL rule that the global work size is a multiple of the work-group
//! size (CUDA expresses the same thing via `gridDim` rounding).

use crate::engine::{GpuDevice, Kernel, LaunchConfig, LaunchResult};
use bdm_device::specs::GpuSpec;

/// Which API vocabulary a pipeline uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiFrontend {
    /// NVIDIA CUDA: `<<<gridDim, blockDim, sharedBytes>>>`.
    Cuda,
    /// OpenCL: `clEnqueueNDRangeKernel(global_size, local_size)`.
    OpenCl,
}

impl ApiFrontend {
    /// Human-readable runtime name (benchmark tables).
    pub fn name(&self) -> &'static str {
        match self {
            ApiFrontend::Cuda => "CUDA",
            ApiFrontend::OpenCl => "OpenCL",
        }
    }
}

/// CUDA-flavored runtime wrapper.
pub struct CudaRuntime {
    device: GpuDevice,
}

impl CudaRuntime {
    /// Create a runtime on a device.
    pub fn new(spec: GpuSpec, trace_sample: u64) -> Self {
        Self {
            device: GpuDevice::with_trace_sampling(spec, trace_sample),
        }
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// `kernel<<<grid_dim, block_dim, shared_bytes>>>()`.
    pub fn launch_kernel<K: Kernel>(
        &self,
        kernel: &K,
        grid_dim: u32,
        block_dim: u32,
        shared_bytes: usize,
    ) -> LaunchResult {
        self.device.launch(
            kernel,
            LaunchConfig {
                grid_dim,
                block_dim,
                shared_words: shared_bytes.div_ceil(8),
            },
        )
    }
}

/// OpenCL-flavored runtime wrapper.
pub struct OpenClRuntime {
    device: GpuDevice,
}

impl OpenClRuntime {
    /// Create a runtime on a device.
    pub fn new(spec: GpuSpec, trace_sample: u64) -> Self {
        Self {
            device: GpuDevice::with_trace_sampling(spec, trace_sample),
        }
    }

    /// The underlying simulated device.
    pub fn device(&self) -> &GpuDevice {
        &self.device
    }

    /// `clEnqueueNDRangeKernel` with a 1-D range. `global_work_size` is
    /// rounded up to a multiple of `local_work_size`, per the OpenCL 1.x
    /// contract the paper's kernels target.
    pub fn enqueue_nd_range<K: Kernel>(
        &self,
        kernel: &K,
        global_work_size: u64,
        local_work_size: u32,
        local_mem_bytes: usize,
    ) -> LaunchResult {
        let groups = global_work_size.div_ceil(local_work_size as u64) as u32;
        self.device.launch(
            kernel,
            LaunchConfig {
                grid_dim: groups.max(1),
                block_dim: local_work_size,
                shared_words: local_mem_bytes.div_ceil(8),
            },
        )
    }
}

/// Frontend-agnostic dispatch used by the pipeline: `items` work items in
/// groups of `group`, with `shared_bytes` of on-chip memory per group.
pub enum Runtime {
    /// CUDA vocabulary.
    Cuda(CudaRuntime),
    /// OpenCL vocabulary.
    OpenCl(OpenClRuntime),
}

impl Runtime {
    /// Construct the chosen frontend.
    pub fn new(frontend: ApiFrontend, spec: GpuSpec, trace_sample: u64) -> Self {
        match frontend {
            ApiFrontend::Cuda => Runtime::Cuda(CudaRuntime::new(spec, trace_sample)),
            ApiFrontend::OpenCl => Runtime::OpenCl(OpenClRuntime::new(spec, trace_sample)),
        }
    }

    /// The underlying device.
    pub fn device(&self) -> &GpuDevice {
        match self {
            Runtime::Cuda(r) => r.device(),
            Runtime::OpenCl(r) => r.device(),
        }
    }

    /// Launch `items` work items in groups of `group`.
    pub fn dispatch<K: Kernel>(
        &self,
        kernel: &K,
        items: usize,
        group: u32,
        shared_bytes: usize,
    ) -> LaunchResult {
        match self {
            Runtime::Cuda(r) => {
                let grid = (items.max(1) as u64).div_ceil(group as u64) as u32;
                r.launch_kernel(kernel, grid, group, shared_bytes)
            }
            Runtime::OpenCl(r) => {
                r.enqueue_nd_range(kernel, items.max(1) as u64, group, shared_bytes)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ThreadCtx, ThreadId};
    use crate::mem::{DeviceAllocator, DeviceBuffer};
    use bdm_device::specs::SYSTEM_A;

    struct Count {
        n: usize,
        hits: DeviceBuffer<u32>,
    }
    impl Kernel for Count {
        fn thread(&self, _p: usize, tid: ThreadId, ctx: &mut ThreadCtx<'_>) {
            let i = tid.global() as usize;
            if i < self.n {
                ctx.atomic_add(&self.hits, 0, 1);
            }
        }
    }

    #[test]
    fn both_frontends_cover_all_items() {
        for frontend in [ApiFrontend::Cuda, ApiFrontend::OpenCl] {
            let mut alloc = DeviceAllocator::new();
            let k = Count {
                n: 1000,
                hits: alloc.alloc::<u32>(1),
            };
            let rt = Runtime::new(frontend, SYSTEM_A.gpu, 1);
            rt.dispatch(&k, 1000, 128, 0);
            assert_eq!(k.hits.read(0), 1000, "{}", frontend.name());
        }
    }

    #[test]
    fn opencl_rounds_global_size_up() {
        let mut alloc = DeviceAllocator::new();
        let k = Count {
            n: usize::MAX, // no guard: counts every launched thread
            hits: alloc.alloc::<u32>(1),
        };
        let rt = OpenClRuntime::new(SYSTEM_A.gpu, 1);
        rt.enqueue_nd_range(&k, 100, 64, 0);
        // 100 rounded up to 2 groups of 64.
        assert_eq!(k.hits.read(0), 128);
    }

    #[test]
    fn frontends_produce_identical_counters() {
        let run = |f: ApiFrontend| {
            let mut alloc = DeviceAllocator::new();
            let k = Count {
                n: 512,
                hits: alloc.alloc::<u32>(1),
            };
            let rt = Runtime::new(f, SYSTEM_A.gpu, 1);
            rt.dispatch(&k, 512, 64, 0).counters
        };
        assert_eq!(run(ApiFrontend::Cuda), run(ApiFrontend::OpenCl));
    }
}
