//! Property-based tests of the SIMT engine's accounting invariants.

use bdm_device::specs::SYSTEM_A;
use bdm_gpu::engine::{GpuDevice, Kernel, LaunchConfig, ThreadCtx, ThreadId};
use bdm_gpu::mem::{DeviceAllocator, DeviceBuffer};
use proptest::prelude::*;

/// A kernel that reads `reads_per_thread` elements starting at
/// `thread_id * stride` and adds them up, writing the sum back.
struct Gather {
    n: usize,
    stride: usize,
    reads_per_thread: usize,
    data: DeviceBuffer<f32>,
    out: DeviceBuffer<f32>,
}

impl Kernel for Gather {
    fn thread(&self, _phase: usize, tid: ThreadId, ctx: &mut ThreadCtx<'_>) {
        let t = tid.global() as usize;
        if t >= self.out.len() {
            return;
        }
        let mut acc = 0.0f32;
        for k in 0..self.reads_per_thread {
            ctx.begin_slot();
            let idx = (t * self.stride + k) % self.n;
            acc += ctx.ld(&self.data, idx);
            ctx.flops::<f32>(1);
        }
        ctx.st(&self.out, t, acc);
    }
}

fn launch_gather(threads: usize, stride: usize, reads: usize) -> bdm_gpu::KernelCounters {
    let n = 4096;
    let mut alloc = DeviceAllocator::new();
    let data = alloc.alloc::<f32>(n);
    for i in 0..n {
        data.write(i, i as f32);
    }
    let out = alloc.alloc::<f32>(threads);
    let k = Gather {
        n,
        stride,
        reads_per_thread: reads,
        data,
        out,
    };
    let dev = GpuDevice::new(SYSTEM_A.gpu);
    let r = dev.launch(&k, LaunchConfig::for_items(threads, 128));
    // Functional check rides along: each output is the right gather sum.
    for t in 0..threads {
        let expect: f32 = (0..reads).map(|kk| ((t * stride + kk) % n) as f32).sum();
        assert_eq!(k.out.read(t), expect, "thread {t}");
    }
    r.counters
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Counter sanity for arbitrary gather shapes.
    #[test]
    fn counters_are_internally_consistent(
        threads in 1usize..512,
        stride in 1usize..64,
        reads in 1usize..16,
    ) {
        let c = launch_gather(threads, stride, reads);
        // Every thread launched is accounted (tail threads included).
        prop_assert_eq!(c.threads_run as usize, threads.div_ceil(128) * 128);
        prop_assert_eq!(c.warps_run, c.threads_run / 32);
        prop_assert_eq!(c.warps_traced, c.warps_run);
        // FLOPs: exactly one per read per active thread.
        prop_assert_eq!(c.flops_fp32 as usize, threads * reads);
        // Hits + misses = transactions; all traffic went through the L2.
        prop_assert!((c.l2_hits + c.l2_misses - c.global_transactions).abs() < 1e-9);
        // Transactions per slot bounded by the warp width and never
        // below 1 for an active slot: total ∈ [slots, slots × 32].
        let total_accesses = (threads * reads + threads) as f64; // reads + stores
        prop_assert!(c.global_transactions >= 1.0);
        prop_assert!(
            c.global_transactions <= total_accesses,
            "coalescing can merge but never multiply transactions: {} > {}",
            c.global_transactions,
            total_accesses
        );
    }

    /// Larger strides can only worsen (or keep equal) coalescing.
    #[test]
    fn stride_monotonicity(reads in 1usize..8) {
        let unit = launch_gather(256, 1, reads);
        let wide = launch_gather(256, 48, reads);
        prop_assert!(
            wide.global_transactions >= unit.global_transactions,
            "stride 48 produced fewer transactions ({}) than stride 1 ({})",
            wide.global_transactions,
            unit.global_transactions
        );
    }

    /// Determinism: identical launches give identical counters.
    #[test]
    fn launch_is_deterministic(
        threads in 1usize..300,
        stride in 1usize..32,
    ) {
        let a = launch_gather(threads, stride, 4);
        let b = launch_gather(threads, stride, 4);
        prop_assert_eq!(a, b);
    }
}

/// Atomic add from every thread: the canonical contention kernel.
struct Contend {
    total: usize,
    cells: usize,
    counters: DeviceBuffer<u32>,
}

impl Kernel for Contend {
    fn thread(&self, _phase: usize, tid: ThreadId, ctx: &mut ThreadCtx<'_>) {
        let t = tid.global() as usize;
        if t >= self.total {
            return;
        }
        ctx.atomic_add(&self.counters, t % self.cells, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Atomics are exact regardless of how threads map onto addresses,
    /// and the serialization penalty falls as contention spreads.
    #[test]
    fn atomic_accounting(threads_pow in 6u32..10, cells in 1usize..64) {
        let threads = 1usize << threads_pow;
        let mut alloc = DeviceAllocator::new();
        let k = Contend {
            total: threads,
            cells,
            counters: alloc.alloc::<u32>(cells),
        };
        let dev = GpuDevice::new(SYSTEM_A.gpu);
        let r = dev.launch(&k, LaunchConfig::for_items(threads, 128));
        // Functional: every increment landed, distributed round-robin.
        let mut total = 0u64;
        for i in 0..cells {
            total += k.counters.read(i) as u64;
        }
        prop_assert_eq!(total, threads as u64);
        prop_assert_eq!(r.counters.atomic_ops, threads as f64);
        // With ≥ 32 distinct addresses, a warp never conflicts.
        if cells >= 32 {
            prop_assert_eq!(r.counters.atomic_serial_cycles, 0.0);
        }
        // With one address, every warp serializes its 31 extra lanes.
        if cells == 1 {
            prop_assert!(r.counters.atomic_serial_cycles > 0.0);
        }
    }
}
