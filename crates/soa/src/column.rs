//! A single SoA attribute column.
//!
//! `Column<T>` is a thin, purpose-revealing wrapper over `Vec<T>` that adds
//! the operations the resource manager needs: permutation gather (Z-order
//! sorting), swap-remove (agent death), and contiguous byte views (device
//! transfers of exactly this column).

use crate::perm::Permutation;

/// One agent attribute, stored contiguously for all agents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Column<T> {
    data: Vec<T>,
}

impl<T: Clone + Send + Sync> Column<T> {
    /// Empty column.
    pub fn new() -> Self {
        Self { data: Vec::new() }
    }

    /// Column with reserved capacity (the cell-division benchmark grows the
    /// population every step; reserving avoids reallocation in the loop).
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Column of `n` copies of `value`.
    pub fn filled(value: T, n: usize) -> Self {
        Self {
            data: vec![value; n],
        }
    }

    /// Build from an existing vector.
    pub fn from_vec(data: Vec<T>) -> Self {
        Self { data }
    }

    /// Number of agents in the column.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when no agents are stored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Append one agent's value.
    pub fn push(&mut self, v: T) {
        self.data.push(v);
    }

    /// Remove agent `i` by moving the last agent into its slot (O(1), does
    /// not preserve order — the environment is rebuilt each step anyway).
    pub fn swap_remove(&mut self, i: usize) -> T {
        self.data.swap_remove(i)
    }

    /// Read access.
    #[inline(always)]
    pub fn get(&self, i: usize) -> &T {
        &self.data[i]
    }

    /// Write access.
    #[inline(always)]
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }

    /// Set agent `i`'s value.
    #[inline(always)]
    pub fn set(&mut self, i: usize, v: T) {
        self.data[i] = v;
    }

    /// The whole column as a slice (this is what gets copied to the device).
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable slice over the whole column.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Reorder the column by `perm` (gather convention), reusing `scratch`.
    pub fn permute(&mut self, perm: &Permutation, scratch: &mut Vec<T>) {
        perm.apply_in_place(&mut self.data, scratch);
    }

    /// Drop all agents but keep the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Grow to `n` agents, filling new slots with `value`.
    pub fn resize(&mut self, n: usize, value: T) {
        self.data.resize(n, value);
    }

    /// Iterate over values.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    /// Disjoint mutable views over consecutive `size`-agent chunks.
    ///
    /// The chunks partition the column, so they can be written from
    /// different threads simultaneously; chunking by a *fixed* size
    /// (instead of dividing by the thread count) keeps the partition —
    /// and therefore any per-chunk reduction order — independent of how
    /// many workers execute it.
    pub fn chunks_mut(&mut self, size: usize) -> std::slice::ChunksMut<'_, T> {
        self.data.chunks_mut(size)
    }
}

impl<T: Clone + Send + Sync> FromIterator<T> for Column<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        Self {
            data: iter.into_iter().collect(),
        }
    }
}

impl<T: Clone + Send + Sync> std::ops::Index<usize> for Column<T> {
    type Output = T;
    #[inline(always)]
    fn index(&self, i: usize) -> &T {
        &self.data[i]
    }
}

impl<T: Clone + Send + Sync> std::ops::IndexMut<usize> for Column<T> {
    #[inline(always)]
    fn index_mut(&mut self, i: usize) -> &mut T {
        &mut self.data[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_set() {
        let mut c = Column::new();
        c.push(1.0f64);
        c.push(2.0);
        assert_eq!(c.len(), 2);
        assert_eq!(*c.get(1), 2.0);
        c.set(0, 5.0);
        assert_eq!(c[0], 5.0);
    }

    #[test]
    fn swap_remove_moves_last() {
        let mut c: Column<i32> = [10, 20, 30, 40].into_iter().collect();
        let removed = c.swap_remove(1);
        assert_eq!(removed, 20);
        assert_eq!(c.as_slice(), &[10, 40, 30]);
    }

    #[test]
    fn permute_reorders() {
        let mut c: Column<i32> = [3, 1, 2].into_iter().collect();
        let perm = Permutation::sorting_by_key(c.as_slice());
        let mut scratch = Vec::new();
        c.permute(&perm, &mut scratch);
        assert_eq!(c.as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn filled_and_resize() {
        let mut c = Column::filled(7u8, 3);
        assert_eq!(c.as_slice(), &[7, 7, 7]);
        c.resize(5, 9);
        assert_eq!(c.as_slice(), &[7, 7, 7, 9, 9]);
        c.resize(2, 0);
        assert_eq!(c.as_slice(), &[7, 7]);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut c = Column::with_capacity(100);
        c.push(1);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn chunks_mut_are_disjoint_windows() {
        let mut c: Column<i32> = (0..7).collect();
        let chunks: Vec<&mut [i32]> = c.chunks_mut(3).collect();
        assert_eq!(chunks.len(), 3);
        for chunk in chunks {
            for v in chunk.iter_mut() {
                *v *= 10;
            }
        }
        assert_eq!(c.as_slice(), &[0, 10, 20, 30, 40, 50, 60]);
    }

    #[test]
    fn index_mut_writes() {
        let mut c: Column<i32> = [1, 2].into_iter().collect();
        c[1] = 99;
        assert_eq!(c.as_slice(), &[1, 99]);
    }
}
