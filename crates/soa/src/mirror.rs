//! Lazily refreshed `f64 → f32` column mirrors.
//!
//! The mixed-precision force pass (paper Improvement I on the CPU) reads
//! positions and diameters as `f32`, but the resource manager stores
//! `f64` — BioDynaMo's storage default, and the precision the rest of the
//! pipeline (behaviors, displacement integration) keeps. Rather than
//! narrowing the storage, each hot column gets an [`F32Mirror`]: a cast
//! copy that is refreshed only when the source column's *dirty epoch*
//! advances, so consecutive steps over an unchanged column pay zero
//! conversion traffic.
//!
//! The epoch is owned by the source container (the resource manager bumps
//! one counter per mutation family); the mirror just remembers the epoch
//! it last copied at. That makes the refresh decision deterministic — a
//! pure function of the mutation history, never of timing — so the
//! "copies performed" count is a gateable benchmark metric. A mirror is
//! therefore also keyed to *one* source container for its lifetime:
//! reusing it against a different container with a coincidentally equal
//! epoch would wrongly skip the copy (the sim crate's `MechScratch` owns
//! its mirrors per simulation, which enforces this).

/// An `f32` shadow of an `f64` column, refreshed on epoch change.
#[derive(Debug, Clone, Default)]
pub struct F32Mirror {
    data: Vec<f32>,
    /// Epoch of the last refresh; `None` until the first one.
    epoch: Option<u64>,
}

impl F32Mirror {
    /// Empty, never-refreshed mirror.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bring the mirror up to date with `src` if `epoch` differs from the
    /// last refreshed epoch (or the length drifted — a cheap belt-and-
    /// braces check). Returns the number of elements converted: `src.len()`
    /// on a refresh, `0` when the mirror was already clean.
    pub fn refresh(&mut self, epoch: u64, src: &[f64]) -> u64 {
        if self.epoch == Some(epoch) && self.data.len() == src.len() {
            return 0;
        }
        self.data.clear();
        self.data.extend(src.iter().map(|&v| v as f32));
        self.epoch = Some(epoch);
        src.len() as u64
    }

    /// The mirrored lanes. Empty until the first [`F32Mirror::refresh`].
    #[inline(always)]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Elements currently mirrored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing is mirrored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Forget the refresh epoch: the next [`F32Mirror::refresh`] copies
    /// unconditionally.
    pub fn invalidate(&mut self) {
        self.epoch = None;
    }
}

/// A packed `[x, y, z, w]` `f32` record mirror over four `f64` columns —
/// the CPU analogue of the GPU kernels' `float4` loads.
///
/// A gather that touches four separate column mirrors keeps eight
/// zero-extended lane indices live across four address streams, which
/// costs a cache line per column *and* spills the index registers in the
/// hot loop. Packing the four hot components into one 16-byte record
/// makes a lane gather a single address computation and a single
/// aligned-within-line load.
///
/// The four source columns may be keyed to two different dirty epochs
/// (here: positions and attributes); the packed record re-converts
/// whole when *either* epoch moves, trading a few redundant component
/// conversions for the packed layout. Same determinism contract as
/// [`F32Mirror`]: the refresh decision is a pure function of the epoch
/// pair, and the mirror must stay with one source container.
#[derive(Debug, Clone, Default)]
pub struct F32x4Mirror {
    data: Vec<[f32; 4]>,
    /// Epoch pair of the last refresh; `None` until the first one.
    epochs: Option<(u64, u64)>,
}

impl F32x4Mirror {
    /// Empty, never-refreshed mirror.
    pub fn new() -> Self {
        Self::default()
    }

    /// Refresh from the four equal-length source columns if either epoch
    /// differs from the last refresh (or the length drifted). Returns the
    /// number of component conversions performed: `4 * len` on a refresh,
    /// `0` when clean.
    pub fn refresh(
        &mut self,
        epoch_a: u64,
        epoch_b: u64,
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        ws: &[f64],
    ) -> u64 {
        assert!(
            xs.len() == ys.len() && ys.len() == zs.len() && zs.len() == ws.len(),
            "packed mirror sources must be equal length"
        );
        if self.epochs == Some((epoch_a, epoch_b)) && self.data.len() == xs.len() {
            return 0;
        }
        self.data.clear();
        self.data.extend(
            xs.iter()
                .zip(ys)
                .zip(zs)
                .zip(ws)
                .map(|(((&x, &y), &z), &w)| [x as f32, y as f32, z as f32, w as f32]),
        );
        self.epochs = Some((epoch_a, epoch_b));
        4 * xs.len() as u64
    }

    /// The mirrored records. Empty until the first [`F32x4Mirror::refresh`].
    #[inline(always)]
    pub fn as_slice(&self) -> &[[f32; 4]] {
        &self.data
    }

    /// Records currently mirrored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when nothing is mirrored.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Forget the refresh epochs: the next [`F32x4Mirror::refresh`] copies
    /// unconditionally.
    pub fn invalidate(&mut self) {
        self.epochs = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refresh_is_lazy_on_epoch() {
        let src = [1.0f64, 2.5, -3.25];
        let mut m = F32Mirror::new();
        assert!(m.is_empty());
        assert_eq!(m.refresh(7, &src), 3, "first refresh always copies");
        assert_eq!(m.as_slice(), &[1.0f32, 2.5, -3.25]);
        assert_eq!(m.refresh(7, &src), 0, "same epoch: clean");
        assert_eq!(m.refresh(8, &src), 3, "bumped epoch: recopy");
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn length_drift_forces_a_copy() {
        // Defensive: even with a stale epoch value, a length mismatch can
        // never serve wrong-sized data.
        let mut m = F32Mirror::new();
        m.refresh(1, &[1.0, 2.0]);
        assert_eq!(m.refresh(1, &[1.0, 2.0, 3.0]), 3);
        assert_eq!(m.as_slice(), &[1.0f32, 2.0, 3.0]);
    }

    #[test]
    fn casts_narrow_with_round_to_nearest() {
        let mut m = F32Mirror::new();
        let third = 1.0f64 / 3.0;
        m.refresh(0, &[third, f64::MAX, 1e-300]);
        assert_eq!(m.as_slice()[0], third as f32);
        assert!(m.as_slice()[1].is_infinite(), "overflow saturates to inf");
        assert_eq!(m.as_slice()[2], 0.0, "underflow flushes to zero");
    }

    #[test]
    fn invalidate_forgets_the_epoch() {
        let mut m = F32Mirror::new();
        m.refresh(3, &[4.0]);
        m.invalidate();
        assert_eq!(m.refresh(3, &[4.0]), 1, "copies again after invalidate");
    }

    #[test]
    fn packed_mirror_refreshes_on_either_epoch() {
        let xs = [1.0f64, 2.0];
        let ys = [3.0f64, 4.0];
        let zs = [5.0f64, 6.0];
        let ws = [7.0f64, 8.0];
        let mut m = F32x4Mirror::new();
        assert!(m.is_empty());
        assert_eq!(m.refresh(1, 1, &xs, &ys, &zs, &ws), 8);
        assert_eq!(
            m.as_slice(),
            &[[1.0f32, 3.0, 5.0, 7.0], [2.0f32, 4.0, 6.0, 8.0]]
        );
        assert_eq!(m.refresh(1, 1, &xs, &ys, &zs, &ws), 0, "both epochs clean");
        assert_eq!(m.refresh(2, 1, &xs, &ys, &zs, &ws), 8, "first epoch moved");
        assert_eq!(m.refresh(2, 2, &xs, &ys, &zs, &ws), 8, "second epoch moved");
        assert_eq!(m.len(), 2);
        m.invalidate();
        assert_eq!(
            m.refresh(2, 2, &xs, &ys, &zs, &ws),
            8,
            "invalidate recopies"
        );
    }

    #[test]
    fn packed_mirror_length_drift_forces_a_copy() {
        let mut m = F32x4Mirror::new();
        m.refresh(1, 1, &[1.0], &[2.0], &[3.0], &[4.0]);
        let two = [9.0f64, 10.0];
        assert_eq!(m.refresh(1, 1, &two, &two, &two, &two), 8);
        assert_eq!(m.as_slice()[1], [10.0f32; 4]);
    }
}
