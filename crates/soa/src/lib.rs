//! Structs-of-arrays (SoA) storage for agent state.
//!
//! The paper deliberately baselines on BioDynaMo v0.0.9 because that
//! version stores agent state as *structs-of-arrays*: the x-coordinates of
//! all agents are contiguous in memory, as are the y-coordinates, the
//! diameters, and so on. Two properties of that layout matter for the
//! reproduction:
//!
//! 1. **Device transfers copy whole columns.** Offloading the mechanical
//!    interaction operation needs only the position/diameter/adherence
//!    columns; in SoA form each is a single contiguous `memcpy`-style
//!    transfer (paper §IV-B).
//! 2. **Space-filling-curve sorting is a column permutation.** Improvement
//!    II reorders agents along a Z-order curve; with SoA state this is one
//!    gather per column (see [`Permutation`]).
//!
//! The crate provides [`Column`] (one attribute array), [`SoaVec3`] (a
//! 3-component attribute stored as three scalar columns), and
//! [`Permutation`] (validated index permutations with parallel gather).

pub mod column;
pub mod mirror;
pub mod perm;
pub mod vec3col;

pub use column::Column;
pub use mirror::{F32Mirror, F32x4Mirror};
pub use perm::Permutation;
pub use vec3col::{split_mut_at, SoaVec3, Vec3ChunkMut};

/// Index of an agent inside the resource manager's SoA columns.
///
/// A `u32` deliberately: BioDynaMo targets up to a few hundred million
/// agents, and halving the index width halves the memory traffic of the
/// uniform-grid linked lists on the (simulated) GPU.
///
/// `repr(transparent)` guarantees the layout matches `u32` exactly, so
/// bulk consumers (the fused SIMD force pass, GPU-side buffers) may
/// reinterpret an id slice as raw `u32`s without a copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct AgentId(pub u32);

impl AgentId {
    /// Sentinel used as the linked-list terminator in the uniform grid
    /// (`Grid::successors_` in the paper's UML, Fig. 5).
    pub const NULL: AgentId = AgentId(u32::MAX);

    /// `true` when this id is the list terminator.
    #[inline(always)]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }

    /// Reinterpret a raw `u32` as an id, mapping the sentinel bit pattern
    /// onto [`AgentId::NULL`]. This is the one place where the raw
    /// encoding (`u32::MAX` = null) meets code that stores ids in plain
    /// `u32` cells — atomics in the parallel grid build, GPU-side
    /// buffers — so the sentinel value is defined here and in
    /// [`AgentId::NULL`] only, never at call sites.
    #[inline(always)]
    pub const fn from_raw(raw: u32) -> Self {
        AgentId(raw)
    }

    /// The index as a `usize` for column access.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Construct from a column index; panics if it collides with the
    /// sentinel or exceeds `u32`.
    #[inline(always)]
    pub fn from_index(i: usize) -> Self {
        assert!(i < u32::MAX as usize, "agent index {i} overflows AgentId");
        AgentId(i as u32)
    }
}

/// View an id slice as its raw `u32` indices, zero-copy.
///
/// Sound because [`AgentId`] is `repr(transparent)` over `u32`: same
/// size and alignment, and every bit pattern is valid for both (the
/// [`AgentId::NULL`] sentinel is just `u32::MAX`). Bulk consumers use
/// this to feed id runs straight into vector lanes or device buffers.
#[inline]
pub fn ids_as_raw(ids: &[AgentId]) -> &[u32] {
    // SAFETY: repr(transparent) guarantees identical layout, and `u32`
    // has no validity constraints an `AgentId` could violate.
    unsafe { core::slice::from_raw_parts(ids.as_ptr().cast(), ids.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_view_as_raw_u32() {
        let ids = [AgentId(3), AgentId::NULL, AgentId(0)];
        assert_eq!(ids_as_raw(&ids), &[3, u32::MAX, 0]);
        assert!(ids_as_raw(&[]).is_empty());
    }

    #[test]
    fn agent_id_roundtrip() {
        let id = AgentId::from_index(42);
        assert_eq!(id.index(), 42);
        assert!(!id.is_null());
    }

    #[test]
    fn null_sentinel() {
        assert!(AgentId::NULL.is_null());
        assert_eq!(AgentId::NULL.0, u32::MAX);
    }

    #[test]
    #[should_panic]
    fn sentinel_index_rejected() {
        AgentId::from_index(u32::MAX as usize);
    }
}
