//! Validated index permutations with (parallel) gather application.
//!
//! Improvement II sorts agents along the Z-order curve. With SoA state the
//! sort is realized as: compute Morton keys → argsort → apply the resulting
//! permutation to every column. This module owns the "apply to every
//! column" half; `bdm-morton` owns key computation and argsort.

use rayon::prelude::*;

/// Threshold below which gathers run serially; rayon's fork/join overhead
/// dominates for tiny columns.
const PAR_THRESHOLD: usize = 1 << 14;

/// A permutation of `0..len`, stored in *gather* convention:
/// `new[i] = old[perm[i]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    gather: Vec<u32>,
}

impl Permutation {
    /// Wrap a gather vector, validating that it is a bijection of
    /// `0..gather.len()`.
    pub fn new(gather: Vec<u32>) -> Self {
        let n = gather.len();
        assert!(n < u32::MAX as usize, "permutation too large for u32");
        let mut seen = vec![false; n];
        for &g in &gather {
            let g = g as usize;
            assert!(g < n, "permutation entry {g} out of range 0..{n}");
            assert!(!seen[g], "duplicate permutation entry {g}");
            seen[g] = true;
        }
        Self { gather }
    }

    /// Wrap without validation. Safe in the memory sense (application
    /// bounds-checks), but a non-bijective vector would silently duplicate
    /// or drop elements — callers must guarantee bijectivity.
    pub fn new_unchecked(gather: Vec<u32>) -> Self {
        Self { gather }
    }

    /// The identity permutation of length `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            gather: (0..n as u32).collect(),
        }
    }

    /// Argsort: the permutation that orders `keys` ascending (stable, so
    /// equal Morton keys — agents in the same voxel — keep their relative
    /// order, which keeps the parallel and serial pipelines bit-identical).
    pub fn sorting_by_key<K: Ord + Send + Sync + Copy>(keys: &[K]) -> Self {
        let mut idx: Vec<u32> = (0..keys.len() as u32).collect();
        if keys.len() >= PAR_THRESHOLD {
            idx.par_sort_by_key(|&i| keys[i as usize]);
        } else {
            idx.sort_by_key(|&i| keys[i as usize]);
        }
        Self { gather: idx }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.gather.len()
    }

    /// `true` when the permutation is empty.
    pub fn is_empty(&self) -> bool {
        self.gather.is_empty()
    }

    /// `true` when this is the identity.
    pub fn is_identity(&self) -> bool {
        self.gather.iter().enumerate().all(|(i, &g)| i as u32 == g)
    }

    /// Raw gather indices (`new[i] = old[g[i]]`).
    pub fn gather_indices(&self) -> &[u32] {
        &self.gather
    }

    /// The inverse permutation: if `self` maps old→new by gather, the
    /// inverse maps new→old. `self.apply(&inverse.apply(&x)) == x`.
    pub fn inverse(&self) -> Self {
        let mut inv = vec![0u32; self.gather.len()];
        for (new_pos, &old_pos) in self.gather.iter().enumerate() {
            inv[old_pos as usize] = new_pos as u32;
        }
        Self { gather: inv }
    }

    /// Out-of-place gather: returns `new` with `new[i] = data[perm[i]]`.
    pub fn apply<T: Clone + Send + Sync>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(
            data.len(),
            self.gather.len(),
            "column length {} does not match permutation length {}",
            data.len(),
            self.gather.len()
        );
        if data.len() >= PAR_THRESHOLD {
            self.gather
                .par_iter()
                .map(|&g| data[g as usize].clone())
                .collect()
        } else {
            self.gather
                .iter()
                .map(|&g| data[g as usize].clone())
                .collect()
        }
    }

    /// Gather `src` through the permutation into `dst`, reusing `dst`'s
    /// capacity (`dst[i] = src[perm[i]]`; `dst` is cleared first).
    pub fn gather_into<T: Clone + Send + Sync>(&self, src: &[T], dst: &mut Vec<T>) {
        // Check the length up front — including on the identity fast
        // path — so a mismatched column fails here with a clear message
        // instead of deep inside the gather (or, worse for identity,
        // silently copying a wrong-sized column).
        assert_eq!(
            src.len(),
            self.gather.len(),
            "column length {} does not match permutation length {}",
            src.len(),
            self.gather.len()
        );
        dst.clear();
        if self.is_identity() {
            dst.extend_from_slice(src);
            return;
        }
        dst.extend(self.gather.iter().map(|&g| src[g as usize].clone()));
    }

    /// In-place gather through a scratch buffer (reuses `scratch`'s
    /// capacity; on a non-identity permutation, leaves `scratch` holding
    /// the old data).
    ///
    /// Identity fast path: when the permutation is the identity the data
    /// is already in place, so nothing is copied and `scratch` is left
    /// untouched — an amortized reorder pass that finds the population
    /// already sorted costs one O(n) index scan and zero element moves.
    pub fn apply_in_place<T: Clone + Send + Sync>(&self, data: &mut Vec<T>, scratch: &mut Vec<T>) {
        if self.is_identity() {
            assert_eq!(
                data.len(),
                self.gather.len(),
                "column length {} does not match permutation length {}",
                data.len(),
                self.gather.len()
            );
            return;
        }
        scratch.clear();
        scratch.extend(self.apply(data.as_slice()));
        std::mem::swap(data, scratch);
    }

    /// Apply the permutation to several same-typed columns, cascading one
    /// scratch buffer across all of them (one allocation amortized over
    /// the whole reorder). The identity check runs once up front, so an
    /// already-sorted population costs zero copies no matter how many
    /// columns ride along.
    pub fn apply_columns_in_place<T: Clone + Send + Sync>(
        &self,
        columns: &mut [&mut Vec<T>],
        scratch: &mut Vec<T>,
    ) {
        if self.is_identity() {
            for col in columns.iter() {
                assert_eq!(
                    col.len(),
                    self.gather.len(),
                    "column length {} does not match permutation length {}",
                    col.len(),
                    self.gather.len()
                );
            }
            return;
        }
        for col in columns.iter_mut() {
            scratch.clear();
            scratch.extend(self.apply(col.as_slice()));
            std::mem::swap(*col, scratch);
        }
    }

    /// Composition: `(self ∘ other)` first applies `other`, then `self`.
    pub fn compose(&self, other: &Self) -> Self {
        assert_eq!(self.len(), other.len());
        let gather = self
            .gather
            .iter()
            .map(|&g| other.gather[g as usize])
            .collect();
        Self { gather }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let p = Permutation::identity(5);
        assert!(p.is_identity());
        assert_eq!(p.apply(&[10, 20, 30, 40, 50]), vec![10, 20, 30, 40, 50]);
    }

    #[test]
    fn gather_convention() {
        // new[i] = old[perm[i]]
        let p = Permutation::new(vec![2, 0, 1]);
        assert_eq!(p.apply(&['a', 'b', 'c']), vec!['c', 'a', 'b']);
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::new(vec![3, 1, 0, 2]);
        let data = vec![1.0, 2.0, 3.0, 4.0];
        let shuffled = p.apply(&data);
        let restored = p.inverse().apply(&shuffled);
        assert_eq!(restored, data);
    }

    #[test]
    fn sorting_by_key_sorts() {
        let keys = [5u64, 1, 4, 2, 3];
        let p = Permutation::sorting_by_key(&keys);
        let sorted = p.apply(&keys);
        assert_eq!(sorted, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn sorting_is_stable() {
        let keys = [1u64, 0, 1, 0];
        let p = Permutation::sorting_by_key(&keys);
        // Values tagged with original index; equal keys preserve order.
        let tagged = ["a1", "b0", "c1", "d0"];
        assert_eq!(p.apply(&tagged), vec!["b0", "d0", "a1", "c1"]);
    }

    #[test]
    fn compose_applies_right_then_left() {
        let rot = Permutation::new(vec![1, 2, 0]); // new[i] = old[i+1 mod 3]
        let composed = rot.compose(&rot);
        let data = vec![0, 1, 2];
        assert_eq!(composed.apply(&data), rot.apply(&rot.apply(&data)));
    }

    #[test]
    fn apply_in_place_matches_apply() {
        let p = Permutation::new(vec![2, 0, 3, 1]);
        let data = vec![9, 8, 7, 6];
        let expected = p.apply(&data);
        let mut d = data.clone();
        let mut scratch = Vec::new();
        p.apply_in_place(&mut d, &mut scratch);
        assert_eq!(d, expected);
        assert_eq!(scratch, data); // scratch holds the pre-gather data
    }

    #[test]
    fn gather_into_matches_apply_and_reuses_dst() {
        let p = Permutation::new(vec![2, 0, 3, 1]);
        let data = vec![9, 8, 7, 6];
        let mut dst = Vec::with_capacity(16);
        let cap = dst.capacity();
        p.gather_into(&data, &mut dst);
        assert_eq!(dst, p.apply(&data));
        assert_eq!(dst.capacity(), cap, "dst capacity is reused");
    }

    #[test]
    fn identity_apply_in_place_is_zero_copy() {
        // The identity fast path must neither move the data buffer nor
        // touch the scratch — sentinel contents survive unchanged.
        let p = Permutation::identity(4);
        let mut data = vec![1, 2, 3, 4];
        let ptr = data.as_ptr();
        let mut scratch = vec![99, 99];
        p.apply_in_place(&mut data, &mut scratch);
        assert_eq!(data, vec![1, 2, 3, 4]);
        assert_eq!(data.as_ptr(), ptr, "identity must not reallocate data");
        assert_eq!(scratch, vec![99, 99], "identity must not touch scratch");

        let mut cols = [vec![1.0, 2.0], vec![3.0, 4.0]];
        let [ref mut a, ref mut b] = cols;
        let mut scratch = vec![7.0];
        Permutation::identity(2).apply_columns_in_place(&mut [a, b], &mut scratch);
        assert_eq!(scratch, vec![7.0], "multi-column identity is zero-copy");
        assert_eq!(cols, [vec![1.0, 2.0], vec![3.0, 4.0]]);
    }

    #[test]
    fn apply_columns_in_place_cascades_one_scratch() {
        let p = Permutation::new(vec![1, 2, 0]);
        let mut a = vec![10, 20, 30];
        let mut b = vec![40, 50, 60];
        let mut scratch = Vec::new();
        p.apply_columns_in_place(&mut [&mut a, &mut b], &mut scratch);
        assert_eq!(a, p.apply(&[10, 20, 30]));
        assert_eq!(b, p.apply(&[40, 50, 60]));
    }

    #[test]
    #[should_panic]
    fn identity_apply_in_place_still_checks_length() {
        let p = Permutation::identity(3);
        p.apply_in_place(&mut vec![1, 2], &mut Vec::new());
    }

    #[test]
    #[should_panic]
    fn rejects_out_of_range() {
        Permutation::new(vec![0, 3]);
    }

    #[test]
    #[should_panic]
    fn rejects_duplicates() {
        Permutation::new(vec![0, 0, 1]);
    }

    #[test]
    #[should_panic]
    fn apply_rejects_length_mismatch() {
        Permutation::identity(3).apply(&[1, 2]);
    }

    #[test]
    #[should_panic(expected = "column length 2 does not match permutation length 3")]
    fn gather_into_rejects_length_mismatch_even_for_identity() {
        let mut dst = Vec::new();
        Permutation::identity(3).gather_into(&[1, 2], &mut dst);
    }

    #[test]
    #[should_panic(expected = "does not match permutation length")]
    fn apply_columns_in_place_rejects_length_mismatch() {
        let mut short = vec![1.0];
        let mut scratch = Vec::new();
        Permutation::identity(3).apply_columns_in_place(&mut [&mut short], &mut scratch);
    }

    #[test]
    fn large_parallel_gather_matches_serial() {
        let n = PAR_THRESHOLD * 2;
        let keys: Vec<u64> = (0..n as u64).map(|i| (i * 2654435761) % 1000).collect();
        let p = Permutation::sorting_by_key(&keys);
        let gathered = p.apply(&keys);
        let mut expected = keys.clone();
        expected.sort_unstable();
        assert_eq!(gathered, expected);
    }
}
