//! A 3-component attribute stored as three scalar columns.
//!
//! "The position data of all agents are stored contiguously in memory"
//! (paper §IV-B): positions live as separate `x[]`, `y[]`, `z[]` arrays so
//! the device transfer of the position attribute is three contiguous
//! buffers, and a warp reading the x-coordinates of 32 consecutive
//! (Z-order-sorted) agents issues one coalesced transaction.

use crate::column::Column;
use crate::perm::Permutation;
use bdm_math::{Scalar, Vec3};

/// SoA storage of one `Vec3` attribute for all agents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoaVec3<R> {
    x: Column<R>,
    y: Column<R>,
    z: Column<R>,
}

impl<R: Scalar> SoaVec3<R> {
    /// Empty storage.
    pub fn new() -> Self {
        Self {
            x: Column::new(),
            y: Column::new(),
            z: Column::new(),
        }
    }

    /// Storage with reserved capacity in each component column.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            x: Column::with_capacity(cap),
            y: Column::with_capacity(cap),
            z: Column::with_capacity(cap),
        }
    }

    /// `n` copies of `v`.
    pub fn filled(v: Vec3<R>, n: usize) -> Self {
        Self {
            x: Column::filled(v.x, n),
            y: Column::filled(v.y, n),
            z: Column::filled(v.z, n),
        }
    }

    /// Build from an AoS slice (used at model-initialization time only; the
    /// hot loops never materialize AoS data).
    pub fn from_vecs(vs: &[Vec3<R>]) -> Self {
        let mut out = Self::with_capacity(vs.len());
        for &v in vs {
            out.push(v);
        }
        out
    }

    /// Build directly from three raw component columns (the
    /// checkpoint-restore import path: deserialized SoA data never takes
    /// an AoS detour). Panics when the column lengths disagree — callers
    /// deserializing untrusted data must length-check first.
    pub fn from_columns(x: Vec<R>, y: Vec<R>, z: Vec<R>) -> Self {
        assert!(
            x.len() == y.len() && y.len() == z.len(),
            "component columns must have equal lengths ({}/{}/{})",
            x.len(),
            y.len(),
            z.len()
        );
        Self {
            x: Column::from_vec(x),
            y: Column::from_vec(y),
            z: Column::from_vec(z),
        }
    }

    /// Number of agents.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Append one agent's vector.
    pub fn push(&mut self, v: Vec3<R>) {
        self.x.push(v.x);
        self.y.push(v.y);
        self.z.push(v.z);
    }

    /// Gather agent `i`'s vector from the three columns.
    #[inline(always)]
    pub fn get(&self, i: usize) -> Vec3<R> {
        Vec3::new(*self.x.get(i), *self.y.get(i), *self.z.get(i))
    }

    /// Scatter a vector into agent `i`'s slots.
    #[inline(always)]
    pub fn set(&mut self, i: usize, v: Vec3<R>) {
        self.x.set(i, v.x);
        self.y.set(i, v.y);
        self.z.set(i, v.z);
    }

    /// Add `delta` to agent `i`'s vector (displacement application).
    #[inline(always)]
    pub fn add_assign(&mut self, i: usize, delta: Vec3<R>) {
        *self.x.get_mut(i) += delta.x;
        *self.y.get_mut(i) += delta.y;
        *self.z.get_mut(i) += delta.z;
    }

    /// O(1) removal by swapping in the last agent.
    pub fn swap_remove(&mut self, i: usize) -> Vec3<R> {
        Vec3::new(
            self.x.swap_remove(i),
            self.y.swap_remove(i),
            self.z.swap_remove(i),
        )
    }

    /// Component slices `(x, y, z)` — the exact buffers a device transfer
    /// of this attribute copies.
    pub fn as_slices(&self) -> (&[R], &[R], &[R]) {
        (self.x.as_slice(), self.y.as_slice(), self.z.as_slice())
    }

    /// Mutable component slices.
    pub fn as_mut_slices(&mut self) -> (&mut [R], &mut [R], &mut [R]) {
        (
            self.x.as_mut_slice(),
            self.y.as_mut_slice(),
            self.z.as_mut_slice(),
        )
    }

    /// Reorder all three columns by the same permutation.
    pub fn permute(&mut self, perm: &Permutation, scratch: &mut Vec<R>) {
        self.x.permute(perm, scratch);
        self.y.permute(perm, scratch);
        self.z.permute(perm, scratch);
    }

    /// Resize, filling new agents with `v`.
    pub fn resize(&mut self, n: usize, v: Vec3<R>) {
        self.x.resize(n, v.x);
        self.y.resize(n, v.y);
        self.z.resize(n, v.z);
    }

    /// Set every agent's vector to `v` (e.g. zeroing force accumulators).
    pub fn fill(&mut self, v: Vec3<R>) {
        self.x.as_mut_slice().fill(v.x);
        self.y.as_mut_slice().fill(v.y);
        self.z.as_mut_slice().fill(v.z);
    }

    /// Iterate agents as `Vec3`s (gathering; test/diagnostic use).
    pub fn iter(&self) -> impl Iterator<Item = Vec3<R>> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    /// Disjoint mutable views over consecutive `size`-agent chunks of all
    /// three component columns — the substrate for embarrassingly parallel
    /// per-agent writes (each rayon task owns one chunk, no two tasks
    /// alias). The fixed chunk size keeps the partition independent of
    /// the worker count, so chunk-ordered merges are deterministic.
    pub fn chunks_mut(&mut self, size: usize) -> impl Iterator<Item = Vec3ChunkMut<'_, R>> {
        self.x
            .chunks_mut(size)
            .zip(self.y.chunks_mut(size))
            .zip(self.z.chunks_mut(size))
            .map(|((x, y), z)| Vec3ChunkMut { x, y, z })
    }

    /// Disjoint mutable views over the windows between consecutive
    /// `cuts` — the variable-size sibling of [`Self::chunks_mut`], used
    /// when the partition must respect externally imposed boundaries
    /// (shard ranges subdivided into work chunks). `cuts` must be
    /// non-decreasing, start at 0, and end at `len()`; window `w`
    /// covers agents `cuts[w]..cuts[w + 1]`.
    pub fn chunks_mut_at(&mut self, cuts: &[usize]) -> Vec<Vec3ChunkMut<'_, R>> {
        let n = self.len();
        assert_eq!(cuts.first().copied(), Some(0), "cuts must start at 0");
        assert_eq!(cuts.last().copied(), Some(n), "cuts must end at len()");
        assert!(
            cuts.windows(2).all(|w| w[0] <= w[1]),
            "cuts must be non-decreasing"
        );
        let (mut x, mut y, mut z) = self.as_mut_slices();
        let mut out = Vec::with_capacity(cuts.len() - 1);
        for w in cuts.windows(2) {
            let len = w[1] - w[0];
            let (xa, xb) = x.split_at_mut(len);
            let (ya, yb) = y.split_at_mut(len);
            let (za, zb) = z.split_at_mut(len);
            out.push(Vec3ChunkMut {
                x: xa,
                y: ya,
                z: za,
            });
            x = xb;
            y = yb;
            z = zb;
        }
        out
    }

    /// Total bytes of the three columns (transfer-size accounting).
    pub fn bytes(&self) -> usize {
        3 * self.len() * R::BYTES
    }
}

/// Split a mutable slice at explicit cut points (same contract as
/// [`SoaVec3::chunks_mut_at`]): disjoint windows `cuts[w]..cuts[w+1]`.
pub fn split_mut_at<'a, T>(mut data: &'a mut [T], cuts: &[usize]) -> Vec<&'a mut [T]> {
    assert_eq!(cuts.first().copied(), Some(0), "cuts must start at 0");
    assert_eq!(
        cuts.last().copied(),
        Some(data.len()),
        "cuts must end at len"
    );
    assert!(
        cuts.windows(2).all(|w| w[0] <= w[1]),
        "cuts must be non-decreasing"
    );
    let mut out = Vec::with_capacity(cuts.len() - 1);
    for w in cuts.windows(2) {
        let (head, tail) = data.split_at_mut(w[1] - w[0]);
        out.push(head);
        data = tail;
    }
    out
}

/// A disjoint mutable window over one chunk of a [`SoaVec3`]: the same
/// agent range of the `x`, `y`, and `z` columns. Produced by
/// [`SoaVec3::chunks_mut`]; indices are chunk-local.
pub struct Vec3ChunkMut<'a, R> {
    x: &'a mut [R],
    y: &'a mut [R],
    z: &'a mut [R],
}

impl<R: Scalar> Vec3ChunkMut<'_, R> {
    /// Agents in this chunk.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` when the chunk is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Gather local agent `k`'s vector.
    #[inline(always)]
    pub fn get(&self, k: usize) -> Vec3<R> {
        Vec3::new(self.x[k], self.y[k], self.z[k])
    }

    /// Scatter a vector into local agent `k`'s slots.
    #[inline(always)]
    pub fn set(&mut self, k: usize, v: Vec3<R>) {
        self.x[k] = v.x;
        self.y[k] = v.y;
        self.z[k] = v.z;
    }

    /// Add `delta` to local agent `k`'s vector.
    #[inline(always)]
    pub fn add_assign(&mut self, k: usize, delta: Vec3<R>) {
        self.x[k] += delta.x;
        self.y[k] += delta.y;
        self.z[k] += delta.z;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_columns_roundtrips_as_slices() {
        let s = sample();
        let (x, y, z) = s.as_slices();
        let rebuilt = SoaVec3::from_columns(x.to_vec(), y.to_vec(), z.to_vec());
        assert_eq!(rebuilt.as_slices(), s.as_slices());
        assert_eq!(rebuilt.len(), 3);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn from_columns_rejects_ragged_input() {
        let _ = SoaVec3::from_columns(vec![1.0, 2.0], vec![3.0], vec![4.0]);
    }

    fn sample() -> SoaVec3<f64> {
        SoaVec3::from_vecs(&[
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.0, 5.0, 6.0),
            Vec3::new(7.0, 8.0, 9.0),
        ])
    }

    #[test]
    fn push_get_roundtrip() {
        let s = sample();
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(1), Vec3::new(4.0, 5.0, 6.0));
    }

    #[test]
    fn columns_are_contiguous() {
        let s = sample();
        let (x, y, z) = s.as_slices();
        assert_eq!(x, &[1.0, 4.0, 7.0]);
        assert_eq!(y, &[2.0, 5.0, 8.0]);
        assert_eq!(z, &[3.0, 6.0, 9.0]);
    }

    #[test]
    fn set_and_add_assign() {
        let mut s = sample();
        s.set(0, Vec3::splat(0.0));
        s.add_assign(0, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(s.get(0), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn swap_remove_keeps_soa_consistent() {
        let mut s = sample();
        let removed = s.swap_remove(0);
        assert_eq!(removed, Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0), Vec3::new(7.0, 8.0, 9.0));
        assert_eq!(s.get(1), Vec3::new(4.0, 5.0, 6.0));
    }

    #[test]
    fn permute_moves_all_components_together() {
        let mut s = sample();
        let perm = Permutation::new(vec![2, 0, 1]);
        let mut scratch = Vec::new();
        s.permute(&perm, &mut scratch);
        assert_eq!(s.get(0), Vec3::new(7.0, 8.0, 9.0));
        assert_eq!(s.get(1), Vec3::new(1.0, 2.0, 3.0));
        assert_eq!(s.get(2), Vec3::new(4.0, 5.0, 6.0));
    }

    #[test]
    fn fill_overwrites_everything() {
        let mut s = sample();
        s.fill(Vec3::splat(-1.0));
        assert!(s.iter().all(|v| v == Vec3::splat(-1.0)));
    }

    #[test]
    fn bytes_accounting() {
        let s = sample();
        assert_eq!(s.bytes(), 3 * 3 * 8);
        let f: SoaVec3<f32> = SoaVec3::filled(Vec3::zero(), 10);
        assert_eq!(f.bytes(), 3 * 10 * 4);
    }

    #[test]
    fn chunks_mut_partition_and_write_back() {
        let mut s: SoaVec3<f64> = SoaVec3::filled(Vec3::zero(), 10);
        let chunks: Vec<_> = s.chunks_mut(4).collect();
        assert_eq!(chunks.len(), 3, "10 agents in chunks of 4 → 4+4+2");
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[2].len(), 2);
        for (c, mut chunk) in chunks.into_iter().enumerate() {
            for k in 0..chunk.len() {
                chunk.set(k, Vec3::splat((c * 4 + k) as f64));
                chunk.add_assign(k, Vec3::new(0.5, 0.0, 0.0));
            }
        }
        // Writes through the chunk views land in the parent columns.
        for i in 0..10 {
            assert_eq!(s.get(i), Vec3::new(i as f64 + 0.5, i as f64, i as f64));
        }
    }

    #[test]
    fn chunks_mut_at_respects_cut_points() {
        let mut s: SoaVec3<f64> = SoaVec3::filled(Vec3::zero(), 10);
        let cuts = [0usize, 3, 3, 7, 10];
        {
            let chunks = s.chunks_mut_at(&cuts);
            assert_eq!(chunks.len(), 4);
            assert_eq!(chunks[0].len(), 3);
            assert!(chunks[1].is_empty());
            assert_eq!(chunks[2].len(), 4);
            assert_eq!(chunks[3].len(), 3);
            for (c, mut chunk) in chunks.into_iter().enumerate() {
                for k in 0..chunk.len() {
                    chunk.set(k, Vec3::splat((c * 100 + k) as f64));
                }
            }
        }
        assert_eq!(s.get(0), Vec3::splat(0.0));
        assert_eq!(s.get(3), Vec3::splat(200.0));
        assert_eq!(s.get(6), Vec3::splat(203.0));
        assert_eq!(s.get(9), Vec3::splat(302.0));
    }

    #[test]
    #[should_panic(expected = "cuts must end at len")]
    fn chunks_mut_at_rejects_short_cuts() {
        let mut s: SoaVec3<f64> = SoaVec3::filled(Vec3::zero(), 5);
        s.chunks_mut_at(&[0, 3]);
    }

    #[test]
    fn split_mut_at_partitions_a_slice() {
        let mut data = [0u32; 7];
        let parts = split_mut_at(&mut data, &[0, 2, 2, 7]);
        assert_eq!(parts.iter().map(|p| p.len()).collect::<Vec<_>>(), [2, 0, 5]);
        for (i, part) in parts.into_iter().enumerate() {
            part.fill(i as u32);
        }
        assert_eq!(data, [0, 0, 2, 2, 2, 2, 2]);
    }

    #[test]
    fn resize_extends_with_value() {
        let mut s = sample();
        s.resize(5, Vec3::splat(0.5));
        assert_eq!(s.len(), 5);
        assert_eq!(s.get(4), Vec3::splat(0.5));
    }
}
