//! Property-based tests for the SoA substrate.

use bdm_math::Vec3;
use bdm_soa::{Column, Permutation, SoaVec3};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Strategy producing a random valid permutation of length 0..=256.
fn permutation_strategy() -> impl Strategy<Value = Permutation> {
    (0usize..=256, any::<u64>()).prop_map(|(n, seed)| {
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        idx.shuffle(&mut rng);
        Permutation::new(idx)
    })
}

proptest! {
    /// A permutation followed by its inverse restores the original column.
    #[test]
    fn inverse_restores(perm in permutation_strategy()) {
        let data: Vec<u32> = (0..perm.len() as u32).map(|i| i * 7 + 3).collect();
        let shuffled = perm.apply(&data);
        let restored = perm.inverse().apply(&shuffled);
        prop_assert_eq!(restored, data);
    }

    /// The inverse of the inverse is the original permutation.
    #[test]
    fn double_inverse_is_identity(perm in permutation_strategy()) {
        prop_assert_eq!(perm.inverse().inverse(), perm);
    }

    /// Applying a permutation never loses or duplicates elements.
    #[test]
    fn apply_is_bijective(perm in permutation_strategy()) {
        let data: Vec<u32> = (0..perm.len() as u32).collect();
        let mut shuffled = perm.apply(&data);
        shuffled.sort_unstable();
        prop_assert_eq!(shuffled, data);
    }

    /// Sorting-by-key produces ascending output for arbitrary keys.
    #[test]
    fn argsort_sorts(keys in proptest::collection::vec(any::<u64>(), 0..512)) {
        let perm = Permutation::sorting_by_key(&keys);
        let sorted = perm.apply(&keys);
        prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Composition law: (p ∘ q).apply(x) == p.apply(q.apply(x)).
    #[test]
    fn composition_law(seed in any::<u64>(), n in 0usize..=128) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut a: Vec<u32> = (0..n as u32).collect();
        let mut b: Vec<u32> = (0..n as u32).collect();
        a.shuffle(&mut rng);
        b.shuffle(&mut rng);
        let p = Permutation::new(a);
        let q = Permutation::new(b);
        let data: Vec<u32> = (0..n as u32).map(|i| i * 13).collect();
        prop_assert_eq!(p.compose(&q).apply(&data), p.apply(&q.apply(&data)));
    }

    /// SoaVec3 permutation keeps (x, y, z) triples together.
    #[test]
    fn soavec3_triples_stay_together(perm in permutation_strategy()) {
        let n = perm.len();
        let vecs: Vec<Vec3<f64>> = (0..n)
            .map(|i| Vec3::new(i as f64, i as f64 + 0.25, i as f64 + 0.5))
            .collect();
        let mut soa = SoaVec3::from_vecs(&vecs);
        let mut scratch = Vec::new();
        soa.permute(&perm, &mut scratch);
        for i in 0..n {
            let v = soa.get(i);
            // A valid triple satisfies y = x + 0.25 and z = x + 0.5.
            prop_assert_eq!(v.y, v.x + 0.25);
            prop_assert_eq!(v.z, v.x + 0.5);
        }
    }

    /// Column swap_remove preserves the multiset minus the removed element.
    #[test]
    fn swap_remove_multiset(data in proptest::collection::vec(any::<i32>(), 1..64), idx in any::<prop::sample::Index>()) {
        let i = idx.index(data.len());
        let mut col: Column<i32> = data.iter().copied().collect();
        let removed = col.swap_remove(i);
        prop_assert_eq!(removed, data[i]);
        let mut remaining: Vec<i32> = col.as_slice().to_vec();
        let mut expected = data.clone();
        expected.remove(i);
        remaining.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(remaining, expected);
    }
}
