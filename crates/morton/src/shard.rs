//! Contiguous curve-span sharding of the key space.
//!
//! A [`ShardMap`] partitions the 63-bit curve key space into `shards`
//! contiguous half-open spans `[bounds[s], bounds[s+1])`. Because every
//! agent in a grid voxel shares one key (`crate::cell_keys`), a span
//! boundary can never split a voxel — a voxel belongs to exactly one
//! shard, which is what makes a read-only ghost halo of *whole voxels*
//! well defined.
//!
//! When agents are kept sorted by `(key, uid)` the span partition turns
//! into a partition of the storage index range into contiguous slices
//! ([`ShardMap::ranges`]), so per-shard stepping is per-slice stepping:
//! no gather, no copy.
//!
//! The map is a pure function of its bounds; [`ShardMap::balanced`]
//! re-derives bounds from a sorted key column (equal-population quantile
//! split snapped to key-run starts), so rebalancing is deterministic —
//! the same population always yields the same map, regardless of thread
//! count or history.

use std::ops::Range;

/// A partition of the curve key space into contiguous spans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    /// `shards + 1` non-decreasing bounds; `bounds[0] == 0` and
    /// `bounds[shards] == u64::MAX`. Shard `s` owns keys in
    /// `[bounds[s], bounds[s+1])`. (Curve keys use at most 63 bits, so
    /// the `u64::MAX` sentinel is never an actual key.)
    bounds: Vec<u64>,
}

impl ShardMap {
    /// A map that splits the raw `u64` key space into `shards` equal
    /// spans. Population balance is whatever the key distribution gives;
    /// use [`Self::balanced`] once a population exists.
    pub fn even(shards: usize) -> Self {
        assert!(shards > 0, "shard count must be at least 1");
        let step = u64::MAX / shards as u64;
        let mut bounds: Vec<u64> = (0..shards as u64).map(|s| s * step).collect();
        bounds.push(u64::MAX);
        Self { bounds }
    }

    /// Equal-population split of a **sorted** key column: span boundaries
    /// at the population quantiles, snapped forward to the next key-run
    /// start so a run of equal keys (one voxel) never straddles two
    /// shards. Deterministic: a pure function of the key multiset.
    pub fn balanced(sorted_keys: &[u64], shards: usize) -> Self {
        assert!(shards > 0, "shard count must be at least 1");
        debug_assert!(
            sorted_keys.windows(2).all(|w| w[0] <= w[1]),
            "balanced() requires a sorted key column"
        );
        let n = sorted_keys.len();
        if n == 0 {
            return Self::even(shards);
        }
        let mut bounds = Vec::with_capacity(shards + 1);
        bounds.push(0u64);
        for s in 1..shards {
            let mut t = s * n / shards;
            // Snap forward past the tail of a key run: index t must be
            // the first of its run (or n) for keys[t] to be a clean
            // lower bound.
            while t > 0 && t < n && sorted_keys[t] == sorted_keys[t - 1] {
                t += 1;
            }
            let b = if t >= n { u64::MAX } else { sorted_keys[t] };
            let prev = *bounds.last().expect("bounds is non-empty");
            bounds.push(b.max(prev));
        }
        bounds.push(u64::MAX);
        Self { bounds }
    }

    /// Rebuild a map from previously exported [`Self::bounds`] — the
    /// checkpoint/restore path. Rejects anything that violates the bounds
    /// invariant (≥ 2 entries, `bounds[0] == 0`, last `== u64::MAX`,
    /// non-decreasing) instead of constructing a map whose
    /// [`Self::shard_of`]/[`Self::ranges`] answers would be nonsense.
    pub fn from_bounds(bounds: Vec<u64>) -> Result<Self, String> {
        if bounds.len() < 2 {
            return Err(format!(
                "shard bounds need at least 2 entries (got {})",
                bounds.len()
            ));
        }
        if bounds[0] != 0 {
            return Err(format!("shard bounds must start at 0 (got {})", bounds[0]));
        }
        if *bounds.last().expect("len >= 2") != u64::MAX {
            return Err("shard bounds must end at u64::MAX".to_string());
        }
        if let Some(w) = bounds.windows(2).find(|w| w[0] > w[1]) {
            return Err(format!(
                "shard bounds must be non-decreasing ({} > {})",
                w[0], w[1]
            ));
        }
        Ok(Self { bounds })
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.bounds.len() - 1
    }

    /// The span bounds (`shards + 1` entries, see type docs).
    #[inline]
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// The shard owning `key`: the last span whose lower bound is ≤
    /// `key`. Empty spans (equal consecutive bounds) own nothing.
    #[inline]
    pub fn shard_of(&self, key: u64) -> usize {
        // bounds[0] == 0 ≤ key always, so the partition point is ≥ 1.
        let p = self.bounds.partition_point(|&b| b <= key);
        (p - 1).min(self.shards() - 1)
    }

    /// Storage ranges of each shard in a column sorted by key: shard `s`
    /// holds `sorted_keys[ranges[s]]`. The ranges are contiguous,
    /// ascending, and partition `0..sorted_keys.len()`.
    pub fn ranges(&self, sorted_keys: &[u64]) -> Vec<Range<usize>> {
        debug_assert!(
            sorted_keys.windows(2).all(|w| w[0] <= w[1]),
            "ranges() requires a sorted key column"
        );
        let mut out = Vec::with_capacity(self.shards());
        let mut lo = 0usize;
        for s in 0..self.shards() {
            let hi = if s + 1 == self.shards() {
                sorted_keys.len()
            } else {
                let bound = self.bounds[s + 1];
                lo + sorted_keys[lo..].partition_point(|&k| k < bound)
            };
            out.push(lo..hi);
            lo = hi;
        }
        out
    }

    /// Load imbalance of a range partition: max shard population over the
    /// mean (1.0 = perfectly balanced; `shards` = everything on one
    /// shard). An empty population reports 1.0.
    pub fn imbalance(ranges: &[Range<usize>]) -> f64 {
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        if total == 0 || ranges.is_empty() {
            return 1.0;
        }
        let max = ranges.iter().map(|r| r.len()).max().expect("non-empty");
        max as f64 * ranges.len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_the_key_space() {
        let m = ShardMap::even(4);
        assert_eq!(m.shards(), 4);
        assert_eq!(m.bounds()[0], 0);
        assert_eq!(*m.bounds().last().unwrap(), u64::MAX);
        assert_eq!(m.shard_of(0), 0);
        assert_eq!(m.shard_of(u64::MAX / 2), 2);
        assert_eq!(m.shard_of(u64::MAX - 1), 3);
    }

    #[test]
    fn single_shard_owns_everything() {
        let m = ShardMap::even(1);
        for k in [0u64, 1, 1 << 40, u64::MAX - 1] {
            assert_eq!(m.shard_of(k), 0);
        }
        assert_eq!(m.ranges(&[1, 2, 3]), vec![0..3]);
    }

    #[test]
    fn balanced_splits_at_population_quantiles() {
        let keys: Vec<u64> = (0..100).collect();
        let m = ShardMap::balanced(&keys, 4);
        let r = m.ranges(&keys);
        assert_eq!(r, vec![0..25, 25..50, 50..75, 75..100]);
        assert!((ShardMap::imbalance(&r) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_never_splits_a_key_run() {
        // 50 agents share key 7 straddling the naive midpoint.
        let mut keys = vec![3u64; 30];
        keys.extend(std::iter::repeat_n(7u64, 50));
        keys.extend(std::iter::repeat_n(9u64, 20));
        let m = ShardMap::balanced(&keys, 2);
        let r = m.ranges(&keys);
        // The whole key-7 run lands in shard 0; shard 1 starts at key 9.
        assert_eq!(r, vec![0..80, 80..100]);
        for (s, range) in r.iter().enumerate() {
            for &k in &keys[range.clone()] {
                assert_eq!(m.shard_of(k), s, "key {k} must map into its range's shard");
            }
        }
    }

    #[test]
    fn more_shards_than_key_runs_leaves_trailing_shards_empty() {
        let keys = vec![5u64; 10];
        let m = ShardMap::balanced(&keys, 4);
        let r = m.ranges(&keys);
        assert_eq!(r[0], 0..10);
        assert!(r[1..].iter().all(|r| r.is_empty()));
        let total: usize = r.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn empty_population_is_valid() {
        let m = ShardMap::balanced(&[], 3);
        let r = m.ranges(&[]);
        assert_eq!(r, vec![0..0, 0..0, 0..0]);
        assert_eq!(ShardMap::imbalance(&r), 1.0);
    }

    #[test]
    fn ranges_agree_with_shard_of() {
        let keys: Vec<u64> = [1u64, 1, 2, 2, 2, 9, 9, 40, 41, 42, 90, 95]
            .iter()
            .flat_map(|&k| std::iter::repeat_n(k, 3))
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        for shards in 1..=6 {
            let m = ShardMap::balanced(&sorted, shards);
            let r = m.ranges(&sorted);
            assert_eq!(r.len(), shards);
            assert_eq!(r[0].start, 0);
            assert_eq!(r.last().unwrap().end, sorted.len());
            for w in r.windows(2) {
                assert_eq!(w[0].end, w[1].start, "ranges must tile the column");
            }
            for (s, range) in r.iter().enumerate() {
                for &k in &sorted[range.clone()] {
                    assert_eq!(m.shard_of(k), s);
                }
            }
        }
    }

    #[test]
    fn imbalance_of_a_skewed_partition() {
        // 4 shards, all 8 agents on shard 0 → max/mean = 8 / 2 = 4.
        let r = vec![0..8, 8..8, 8..8, 8..8];
        assert_eq!(ShardMap::imbalance(&r), 4.0);
    }

    #[test]
    #[should_panic(expected = "shard count")]
    fn zero_shards_is_rejected() {
        ShardMap::even(0);
    }

    #[test]
    fn from_bounds_roundtrips_and_validates() {
        let m = ShardMap::even(4);
        let back = ShardMap::from_bounds(m.bounds().to_vec()).unwrap();
        assert_eq!(back, m);
        assert!(ShardMap::from_bounds(vec![]).is_err(), "empty");
        assert!(ShardMap::from_bounds(vec![0]).is_err(), "single entry");
        assert!(
            ShardMap::from_bounds(vec![1, u64::MAX]).is_err(),
            "must start at 0"
        );
        assert!(
            ShardMap::from_bounds(vec![0, 42]).is_err(),
            "must end at u64::MAX"
        );
        assert!(
            ShardMap::from_bounds(vec![0, 9, 3, u64::MAX]).is_err(),
            "must be non-decreasing"
        );
        // Empty spans (equal consecutive bounds) are legal.
        let m = ShardMap::from_bounds(vec![0, 7, 7, u64::MAX]).unwrap();
        assert_eq!(m.shards(), 3);
    }
}
