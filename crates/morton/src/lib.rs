//! Z-order (Morton) space-filling curve — the paper's *Improvement II*.
//!
//! "A space-filling curve describes a path in multidimensional space that
//! passes through the data points in consecutively local order. … For a
//! Z-order curve, the Z-value of each data point can be computed by binary
//! interleaving its coordinate values" (paper §IV-D, Fig. 6).
//!
//! The workflow the paper applies to BioDynaMo, reproduced here:
//!
//! 1. quantize each agent's position into integer voxel coordinates
//!    ([`quantize`]),
//! 2. interleave the coordinate bits into a 63-bit Z-value
//!    ([`encode3`]),
//! 3. argsort agents by Z-value and apply the permutation to every SoA
//!    column ([`sort_permutation`] + `bdm_soa::Permutation`).
//!
//! After the sort, agents that are close in 3-D space are close in memory,
//! so a GPU warp that walks a voxel neighborhood touches few distinct cache
//! lines — the mechanism behind the paper's 2.6× kernel speedup.

pub mod hilbert;
pub mod shard;

use bdm_math::{Aabb, Scalar, Vec3};
use bdm_soa::Permutation;
use rayon::prelude::*;

pub use hilbert::{hilbert_decode3, hilbert_encode3};
pub use shard::ShardMap;

/// Which space-filling curve orders the agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Curve {
    /// Z-order / Morton — the paper's choice (cheap bit interleave).
    #[default]
    ZOrder,
    /// Hilbert — no long jumps, costlier keys (the ablation alternative).
    Hilbert,
}

impl Curve {
    /// Key of quantized coordinates under this curve.
    #[inline]
    pub fn key(&self, x: u32, y: u32, z: u32) -> u64 {
        match self {
            Curve::ZOrder => encode3(x, y, z),
            Curve::Hilbert => hilbert_encode3(x, y, z),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Curve::ZOrder => "z-order",
            Curve::Hilbert => "hilbert",
        }
    }
}

/// Bits kept per coordinate. 3 × 21 = 63 bits fit a `u64` Z-value.
pub const COORD_BITS: u32 = 21;
/// Maximum representable quantized coordinate.
pub const COORD_MAX: u32 = (1 << COORD_BITS) - 1;

/// Spread the low 21 bits of `v` so that consecutive input bits land three
/// positions apart (standard magic-mask dilation).
#[inline]
pub fn spread(v: u32) -> u64 {
    let mut x = (v as u64) & COORD_MAX as u64;
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`spread`]: compact every third bit back into 21 bits.
#[inline]
pub fn compact(v: u64) -> u32 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x001F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x001F_0000_0000_FFFF;
    x = (x | (x >> 32)) & COORD_MAX as u64;
    x as u32
}

/// Interleave three 21-bit coordinates into a Z-value.
/// Bit layout: `… z2 y2 x2 z1 y1 x1 z0 y0 x0` (x in the least significant
/// lane, matching the classic Morton convention).
///
/// ```
/// assert_eq!(bdm_morton::encode3(1, 1, 1), 0b111);
/// assert_eq!(bdm_morton::decode3(bdm_morton::encode3(42, 7, 1000)), (42, 7, 1000));
/// ```
#[inline]
pub fn encode3(x: u32, y: u32, z: u32) -> u64 {
    debug_assert!(x <= COORD_MAX && y <= COORD_MAX && z <= COORD_MAX);
    spread(x) | (spread(y) << 1) | (spread(z) << 2)
}

/// Recover the three coordinates of a Z-value.
#[inline]
pub fn decode3(m: u64) -> (u32, u32, u32) {
    (compact(m), compact(m >> 1), compact(m >> 2))
}

/// 2-D encode, used for the Fig. 6 path illustration and its tests.
#[inline]
pub fn encode2(x: u32, y: u32) -> u64 {
    let mut sx = x as u64;
    sx = (sx | (sx << 16)) & 0x0000_FFFF_0000_FFFF;
    sx = (sx | (sx << 8)) & 0x00FF_00FF_00FF_00FF;
    sx = (sx | (sx << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    sx = (sx | (sx << 2)) & 0x3333_3333_3333_3333;
    sx = (sx | (sx << 1)) & 0x5555_5555_5555_5555;
    let mut sy = y as u64;
    sy = (sy | (sy << 16)) & 0x0000_FFFF_0000_FFFF;
    sy = (sy | (sy << 8)) & 0x00FF_00FF_00FF_00FF;
    sy = (sy | (sy << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    sy = (sy | (sy << 2)) & 0x3333_3333_3333_3333;
    sy = (sy | (sy << 1)) & 0x5555_5555_5555_5555;
    sx | (sy << 1)
}

/// Quantize a position inside `space` into integer voxel coordinates with
/// voxel edge `cell_len`. Positions below the lower boundary clamp to 0;
/// coordinates saturate at [`COORD_MAX`].
#[inline]
pub fn quantize<R: Scalar>(p: Vec3<R>, space: &Aabb<R>, cell_len: R) -> (u32, u32, u32) {
    debug_assert!(cell_len > R::ZERO);
    let rel = p - space.min;
    let q = |v: R| -> u32 {
        let idx = (v / cell_len).floor().to_f64();
        if idx < 0.0 {
            0
        } else {
            (idx as u64).min(COORD_MAX as u64) as u32
        }
    };
    (q(rel.x), q(rel.y), q(rel.z))
}

/// Z-value of a position (quantized at `cell_len` within `space`).
#[inline]
pub fn zvalue<R: Scalar>(p: Vec3<R>, space: &Aabb<R>, cell_len: R) -> u64 {
    let (x, y, z) = quantize(p, space, cell_len);
    encode3(x, y, z)
}

/// Compute the Z-values of all positions in parallel.
///
/// `xs`, `ys`, `zs` are the SoA position columns; `cell_len` is normally
/// the uniform-grid box length, so agents in the same grid voxel share a
/// key (the stable argsort then keeps them adjacent).
pub fn zvalues<R: Scalar>(xs: &[R], ys: &[R], zs: &[R], space: &Aabb<R>, cell_len: R) -> Vec<u64> {
    assert_eq!(xs.len(), ys.len());
    assert_eq!(xs.len(), zs.len());
    let compute = |i: usize| zvalue(Vec3::new(xs[i], ys[i], zs[i]), space, cell_len);
    if xs.len() >= 1 << 14 {
        (0..xs.len()).into_par_iter().map(compute).collect()
    } else {
        (0..xs.len()).map(compute).collect()
    }
}

/// Curve keys of all positions, quantized into **grid voxels**: like
/// [`quantize`] at `cell_len`, but additionally clamped above to the
/// per-axis voxel counts a uniform grid derives from the same space and
/// edge (`ceil(extent / cell_len)`, at least 1 — `bdm_grid`'s
/// `GridGeometry` convention).
///
/// The distinction matters exactly on the upper domain boundary: an agent
/// sitting at `space.max` quantizes into a phantom cell one past the last
/// voxel, while every grid layout clamps it into the boundary voxel. By
/// clamping the same way, "agents share a key" coincides *exactly* with
/// "agents share a grid voxel", which is what lets downstream consumers
/// (the host reorder op, the GPU pipeline's sorted-input detection) treat
/// key order as grid order.
pub fn cell_keys<R: Scalar>(
    xs: &[R],
    ys: &[R],
    zs: &[R],
    space: &Aabb<R>,
    cell_len: R,
    curve: Curve,
) -> Vec<u64> {
    assert_eq!(xs.len(), ys.len());
    assert_eq!(xs.len(), zs.len());
    let e = space.extents();
    let dim = |len: R| -> u32 { ((len / cell_len).ceil().to_f64() as u32).max(1) };
    let dims = [dim(e.x), dim(e.y), dim(e.z)];
    let compute = |i: usize| {
        let (x, y, z) = quantize(Vec3::new(xs[i], ys[i], zs[i]), space, cell_len);
        curve.key(x.min(dims[0] - 1), y.min(dims[1] - 1), z.min(dims[2] - 1))
    };
    if xs.len() >= 1 << 14 {
        (0..xs.len()).into_par_iter().map(compute).collect()
    } else {
        (0..xs.len()).map(compute).collect()
    }
}

/// The permutation that sorts agents along the Z-order curve.
pub fn sort_permutation<R: Scalar>(
    xs: &[R],
    ys: &[R],
    zs: &[R],
    space: &Aabb<R>,
    cell_len: R,
) -> Permutation {
    sort_permutation_with(xs, ys, zs, space, cell_len, Curve::ZOrder)
}

/// The permutation that sorts agents along the chosen space-filling
/// curve (quantized at `cell_len` within `space`).
pub fn sort_permutation_with<R: Scalar>(
    xs: &[R],
    ys: &[R],
    zs: &[R],
    space: &Aabb<R>,
    cell_len: R,
    curve: Curve,
) -> Permutation {
    assert_eq!(xs.len(), ys.len());
    assert_eq!(xs.len(), zs.len());
    let compute = |i: usize| {
        let (x, y, z) = quantize(Vec3::new(xs[i], ys[i], zs[i]), space, cell_len);
        curve.key(x, y, z)
    };
    let keys: Vec<u64> = if xs.len() >= 1 << 14 {
        (0..xs.len()).into_par_iter().map(compute).collect()
    } else {
        (0..xs.len()).map(compute).collect()
    };
    Permutation::sorting_by_key(&keys)
}

/// Average index distance in the given order between spatial neighbors —
/// a locality diagnostic used by tests and the benchmark harness to verify
/// that Morton sorting actually improves memory locality. O(n²); intended
/// for diagnostic sample sizes only.
pub fn mean_neighbor_index_distance(positions: &[(f64, f64, f64)], radius: f64) -> f64 {
    let n = positions.len();
    if n < 2 {
        return 0.0;
    }
    let r2 = radius * radius;
    let mut total = 0.0f64;
    let mut count = 0u64;
    for i in 0..n {
        let (xi, yi, zi) = positions[i];
        for (j, &(xj, yj, zj)) in positions.iter().enumerate().skip(i + 1) {
            let d2 = (xi - xj).powi(2) + (yi - yj).powi(2) + (zi - zj).powi(2);
            if d2 <= r2 {
                total += (j - i) as f64;
                count += 1;
            }
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spread_compact_roundtrip_small() {
        for v in [0u32, 1, 2, 3, 255, 1 << 20, COORD_MAX] {
            assert_eq!(compact(spread(v)), v);
        }
    }

    #[test]
    fn encode3_known_values() {
        assert_eq!(encode3(1, 0, 0), 0b001);
        assert_eq!(encode3(0, 1, 0), 0b010);
        assert_eq!(encode3(0, 0, 1), 0b100);
        assert_eq!(encode3(1, 1, 1), 0b111);
        // (2,0,0): x bit 1 → output bit 3.
        assert_eq!(encode3(2, 0, 0), 0b1000);
        assert_eq!(encode3(3, 3, 3), 0b111111);
    }

    #[test]
    fn decode_inverts_encode() {
        for (x, y, z) in [
            (0, 0, 0),
            (1, 2, 3),
            (100, 2000, 30000),
            (COORD_MAX, 0, COORD_MAX),
        ] {
            assert_eq!(decode3(encode3(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn z_order_visits_quadrants_in_z_pattern() {
        // Fig. 6: in 2-D the curve visits (0,0) (1,0) (0,1) (1,1) — a "Z".
        let order: Vec<u64> = [(0u32, 0u32), (1, 0), (0, 1), (1, 1)]
            .iter()
            .map(|&(x, y)| encode2(x, y))
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn encode2_four_level_path() {
        // All 16 cells of a 4×4 grid enumerate 0..16 in Z-order.
        let mut keys: Vec<(u64, (u32, u32))> = (0..4u32)
            .flat_map(|y| (0..4u32).map(move |x| (encode2(x, y), (x, y))))
            .collect();
        keys.sort_unstable();
        let ks: Vec<u64> = keys.iter().map(|&(k, _)| k).collect();
        assert_eq!(ks, (0..16u64).collect::<Vec<_>>());
        // The first four cells in curve order are the lower-left 2×2 block.
        let first_block: Vec<(u32, u32)> = keys[..4].iter().map(|&(_, c)| c).collect();
        assert_eq!(first_block, vec![(0, 0), (1, 0), (0, 1), (1, 1)]);
    }

    #[test]
    fn quantize_boundaries() {
        let space = Aabb::new(Vec3::new(0.0f64, 0.0, 0.0), Vec3::splat(10.0));
        assert_eq!(quantize(Vec3::splat(0.0), &space, 1.0), (0, 0, 0));
        assert_eq!(quantize(Vec3::new(0.99, 1.0, 9.99), &space, 1.0), (0, 1, 9));
        assert_eq!(quantize(Vec3::splat(-5.0), &space, 1.0), (0, 0, 0));
    }

    #[test]
    fn zvalue_same_voxel_same_key() {
        let space = Aabb::new(Vec3::new(0.0f64, 0.0, 0.0), Vec3::splat(8.0));
        let a = zvalue(Vec3::new(1.1, 2.2, 3.3), &space, 1.0);
        let b = zvalue(Vec3::new(1.9, 2.8, 3.9), &space, 1.0);
        assert_eq!(a, b);
        let c = zvalue(Vec3::new(7.5, 7.5, 7.5), &space, 1.0);
        assert_ne!(a, c);
    }

    #[test]
    fn sort_permutation_sorts_keys() {
        let space = Aabb::new(Vec3::new(0.0f64, 0.0, 0.0), Vec3::splat(16.0));
        let mut rng = bdm_math::SplitMix64::new(3);
        let n = 500;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 16.0)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 16.0)).collect();
        let zs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 16.0)).collect();
        let perm = sort_permutation(&xs, &ys, &zs, &space, 1.0);
        let keys = zvalues(&xs, &ys, &zs, &space, 1.0);
        let sorted = perm.apply(&keys);
        assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn morton_sort_improves_locality_metric() {
        // Random cloud: after Morton sorting, spatial neighbors should sit
        // much closer together in index space than in insertion order.
        let space = Aabb::new(Vec3::new(0.0f64, 0.0, 0.0), Vec3::splat(32.0));
        let mut rng = bdm_math::SplitMix64::new(99);
        let n = 800;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 32.0)).collect();
        let ys: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 32.0)).collect();
        let zs: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 32.0)).collect();
        let unsorted: Vec<(f64, f64, f64)> = (0..n).map(|i| (xs[i], ys[i], zs[i])).collect();
        let perm = sort_permutation(&xs, &ys, &zs, &space, 2.0);
        let g = perm.gather_indices();
        let sorted: Vec<(f64, f64, f64)> = g
            .iter()
            .map(|&i| (xs[i as usize], ys[i as usize], zs[i as usize]))
            .collect();
        let before = mean_neighbor_index_distance(&unsorted, 3.0);
        let after = mean_neighbor_index_distance(&sorted, 3.0);
        assert!(
            after < before * 0.5,
            "expected ≥2× locality improvement, got before={before:.1} after={after:.1}"
        );
    }

    #[test]
    fn cell_keys_clamp_to_grid_dims_on_the_upper_boundary() {
        // extent 8, cell 1 → 8 voxels per axis (0..=7). An agent at the
        // upper boundary quantizes to phantom cell 8 but must share the
        // boundary voxel's key, exactly as GridGeometry::box_coords does.
        let space = Aabb::new(Vec3::new(0.0f64, 0.0, 0.0), Vec3::splat(8.0));
        let xs = [7.5, 8.0];
        let ys = [7.5, 8.0];
        let zs = [7.5, 8.0];
        for curve in [Curve::ZOrder, Curve::Hilbert] {
            let keys = cell_keys(&xs, &ys, &zs, &space, 1.0, curve);
            assert_eq!(keys[0], keys[1], "{} boundary clamp", curve.name());
            assert_eq!(keys[0], curve.key(7, 7, 7));
        }
        // Interior agents agree with the unclamped quantization.
        let keys = cell_keys(&[3.2], &[4.7], &[0.1], &space, 1.0, Curve::ZOrder);
        assert_eq!(keys[0], encode3(3, 4, 0));
    }

    #[test]
    fn f32_and_f64_quantize_identically_on_grid_points() {
        let space64 = Aabb::new(Vec3::new(0.0f64, 0.0, 0.0), Vec3::splat(64.0));
        let space32 = Aabb::new(Vec3::new(0.0f32, 0.0, 0.0), Vec3::splat(64.0));
        for i in 0..32u32 {
            let p64 = Vec3::new(i as f64 + 0.5, 1.5, 2.5);
            let p32 = Vec3::new(i as f32 + 0.5, 1.5, 2.5);
            assert_eq!(quantize(p64, &space64, 1.0), quantize(p32, &space32, 1.0));
        }
    }
}
