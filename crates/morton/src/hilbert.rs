//! 3-D Hilbert curve — the ablation partner of the Z-order sort.
//!
//! The paper picks the Z-order curve for Improvement II because its key
//! is a cheap bit interleave. The Hilbert curve is the classic
//! alternative: unlike the Z-curve it has **no long jumps** — consecutive
//! keys always sit one voxel apart — at the cost of a more expensive key
//! computation. The `ablation_curves` benchmark compares both as the
//! sorting curve of the GPU pipeline.
//!
//! Implementation: John Skilling, *"Programming the Hilbert curve"*,
//! AIP Conf. Proc. 707 (2004) — the transpose representation, converted
//! to/from a flat key by bit interleaving.

use crate::{COORD_BITS, COORD_MAX};

/// Convert axes to the Hilbert transpose representation (in place).
fn axes_to_transpose(x: &mut [u32; 3]) {
    let n = 3;
    let m = 1u32 << (COORD_BITS - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..n {
            if x[i] & q != 0 {
                x[0] ^= p; // invert
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..n {
        x[i] ^= x[i - 1];
    }
    let mut t = 0u32;
    let mut q = m;
    while q > 1 {
        if x[n - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for xi in x.iter_mut() {
        *xi ^= t;
    }
}

/// Convert the transpose representation back to axes (in place) —
/// Skilling's inverse.
fn transpose_to_axes(x: &mut [u32; 3]) {
    let n = 3;
    let m = 1u32 << (COORD_BITS - 1);
    // Gray decode by H ^ (H/2).
    let mut t = x[n - 1] >> 1;
    for i in (1..n).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u32;
    while q != m << 1 {
        let p = q - 1;
        for i in (0..n).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
}

/// Hilbert key of three 21-bit coordinates: the transposed bits,
/// interleaved most-significant first (axis 0 outermost).
pub fn hilbert_encode3(xc: u32, yc: u32, zc: u32) -> u64 {
    debug_assert!(xc <= COORD_MAX && yc <= COORD_MAX && zc <= COORD_MAX);
    let mut x = [xc, yc, zc];
    axes_to_transpose(&mut x);
    let mut key = 0u64;
    for bit in (0..COORD_BITS).rev() {
        for xi in &x {
            key = (key << 1) | ((xi >> bit) & 1) as u64;
        }
    }
    key
}

/// Inverse of [`hilbert_encode3`].
pub fn hilbert_decode3(key: u64) -> (u32, u32, u32) {
    let mut x = [0u32; 3];
    let mut k = key;
    for bit in 0..COORD_BITS {
        for i in (0..3).rev() {
            x[i] |= ((k & 1) as u32) << bit;
            k >>= 1;
        }
    }
    transpose_to_axes(&mut x);
    (x[0], x[1], x[2])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for (x, y, z) in [
            (0, 0, 0),
            (1, 0, 0),
            (1, 2, 3),
            (255, 1023, 7),
            (COORD_MAX, COORD_MAX, COORD_MAX),
            (COORD_MAX, 0, 12345),
        ] {
            assert_eq!(hilbert_decode3(hilbert_encode3(x, y, z)), (x, y, z));
        }
    }

    #[test]
    fn origin_is_key_zero() {
        assert_eq!(hilbert_encode3(0, 0, 0), 0);
    }

    #[test]
    fn keys_are_unique_on_a_small_cube() {
        let mut keys = std::collections::HashSet::new();
        for z in 0..8u32 {
            for y in 0..8 {
                for x in 0..8 {
                    assert!(keys.insert(hilbert_encode3(x, y, z)));
                }
            }
        }
        assert_eq!(keys.len(), 512);
    }

    /// The defining Hilbert property: walking the curve in key order
    /// moves exactly one unit step along exactly one axis every time.
    #[test]
    fn consecutive_keys_are_grid_neighbors() {
        // Enumerate an 8×8×8 block in key order by sorting.
        let mut cells: Vec<(u64, (u32, u32, u32))> = Vec::new();
        for z in 0..8u32 {
            for y in 0..8 {
                for x in 0..8 {
                    cells.push((hilbert_encode3(x, y, z), (x, y, z)));
                }
            }
        }
        cells.sort_unstable();
        for w in cells.windows(2) {
            let (_, (ax, ay, az)) = w[0];
            let (_, (bx, by, bz)) = w[1];
            let d = (ax as i64 - bx as i64).abs()
                + (ay as i64 - by as i64).abs()
                + (az as i64 - bz as i64).abs();
            assert_eq!(
                d,
                1,
                "Hilbert step must be a unit move: {:?} → {:?}",
                (ax, ay, az),
                (bx, by, bz)
            );
        }
    }

    /// The Z-curve makes long jumps between octants; Hilbert never does.
    #[test]
    fn hilbert_has_no_long_jumps_where_zorder_does() {
        let mut z_jumps = 0;
        let mut cells: Vec<(u64, (u32, u32, u32))> = Vec::new();
        for z in 0..8u32 {
            for y in 0..8 {
                for x in 0..8 {
                    cells.push((crate::encode3(x, y, z), (x, y, z)));
                }
            }
        }
        cells.sort_unstable();
        for w in cells.windows(2) {
            let (_, (ax, ay, az)) = w[0];
            let (_, (bx, by, bz)) = w[1];
            let d = (ax as i64 - bx as i64).abs()
                + (ay as i64 - by as i64).abs()
                + (az as i64 - bz as i64).abs();
            if d > 1 {
                z_jumps += 1;
            }
        }
        assert!(z_jumps > 0, "the Z-curve should jump between blocks");
    }
}
