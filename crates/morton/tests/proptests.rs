//! Property-based tests for the Z-order curve.

use bdm_math::{Aabb, Vec3};
use bdm_morton::{compact, decode3, encode2, encode3, quantize, spread, COORD_MAX};
use proptest::prelude::*;

proptest! {
    /// spread/compact are inverse for every 21-bit value.
    #[test]
    fn spread_compact_bijection(v in 0u32..=COORD_MAX) {
        prop_assert_eq!(compact(spread(v)), v);
    }

    /// encode3/decode3 are inverse.
    #[test]
    fn encode_decode_bijection(
        x in 0u32..=COORD_MAX,
        y in 0u32..=COORD_MAX,
        z in 0u32..=COORD_MAX,
    ) {
        prop_assert_eq!(decode3(encode3(x, y, z)), (x, y, z));
    }

    /// Distinct coordinates yield distinct Z-values (injectivity).
    #[test]
    fn encode_injective(
        a in (0u32..1024, 0u32..1024, 0u32..1024),
        b in (0u32..1024, 0u32..1024, 0u32..1024),
    ) {
        if a != b {
            prop_assert_ne!(encode3(a.0, a.1, a.2), encode3(b.0, b.1, b.2));
        }
    }

    /// Monotone within an axis: increasing one coordinate while the others
    /// stay at zero increases the Z-value.
    #[test]
    fn monotone_on_axes(v in 0u32..COORD_MAX) {
        prop_assert!(encode3(v, 0, 0) < encode3(v + 1, 0, 0));
        prop_assert!(encode3(0, v, 0) < encode3(0, v + 1, 0));
        prop_assert!(encode3(0, 0, v) < encode3(0, 0, v + 1));
    }

    /// Octant nesting: the top interleaved bits of the Z-value select the
    /// octant, so all points of a lower octant sort before any point of a
    /// higher octant at the same level.
    #[test]
    fn octant_nesting(
        x0 in 0u32..512, y0 in 0u32..512, z0 in 0u32..512,
        x1 in 512u32..1024, y1 in 512u32..1024, z1 in 512u32..1024,
    ) {
        // Point entirely within the low half on every axis precedes a point
        // entirely within the high half on every axis (10-bit space).
        prop_assert!(encode3(x0, y0, z0) < encode3(x1, y1, z1));
    }

    /// The 2-D encode agrees with the 3-D encode at z = 0 after removing
    /// the z-lane gaps — checked indirectly through order agreement.
    #[test]
    fn encode2_order_matches_encode3_z0(
        a in (0u32..4096, 0u32..4096),
        b in (0u32..4096, 0u32..4096),
    ) {
        let ord2 = encode2(a.0, a.1).cmp(&encode2(b.0, b.1));
        let ord3 = encode3(a.0, a.1, 0).cmp(&encode3(b.0, b.1, 0));
        prop_assert_eq!(ord2, ord3);
    }

    /// Quantization is translation-consistent: shifting the space and the
    /// point by the same offset yields the same voxel coordinates.
    #[test]
    fn quantize_translation_invariant(
        px in 0.0f64..100.0, py in 0.0f64..100.0, pz in 0.0f64..100.0,
        shift in -50.0f64..50.0,
    ) {
        let space = Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::splat(100.0));
        let shifted = Aabb::new(
            Vec3::splat(shift),
            Vec3::splat(shift + 100.0),
        );
        let p = Vec3::new(px, py, pz);
        let ps = p + Vec3::splat(shift);
        prop_assert_eq!(
            quantize(p, &space, 1.0),
            quantize(ps, &shifted, 1.0)
        );
    }
}
