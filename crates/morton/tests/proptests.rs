//! Property-based tests for the Z-order curve, the Hilbert curve, and
//! the curve-span shard map built on top of them.

use bdm_math::{Aabb, Vec3};
use bdm_morton::{
    cell_keys, compact, decode3, encode2, encode3, hilbert_decode3, hilbert_encode3, quantize,
    spread, Curve, ShardMap, COORD_BITS, COORD_MAX,
};
use proptest::prelude::*;

proptest! {
    /// spread/compact are inverse for every 21-bit value.
    #[test]
    fn spread_compact_bijection(v in 0u32..=COORD_MAX) {
        prop_assert_eq!(compact(spread(v)), v);
    }

    /// encode3/decode3 are inverse.
    #[test]
    fn encode_decode_bijection(
        x in 0u32..=COORD_MAX,
        y in 0u32..=COORD_MAX,
        z in 0u32..=COORD_MAX,
    ) {
        prop_assert_eq!(decode3(encode3(x, y, z)), (x, y, z));
    }

    /// Distinct coordinates yield distinct Z-values (injectivity).
    #[test]
    fn encode_injective(
        a in (0u32..1024, 0u32..1024, 0u32..1024),
        b in (0u32..1024, 0u32..1024, 0u32..1024),
    ) {
        if a != b {
            prop_assert_ne!(encode3(a.0, a.1, a.2), encode3(b.0, b.1, b.2));
        }
    }

    /// Monotone within an axis: increasing one coordinate while the others
    /// stay at zero increases the Z-value.
    #[test]
    fn monotone_on_axes(v in 0u32..COORD_MAX) {
        prop_assert!(encode3(v, 0, 0) < encode3(v + 1, 0, 0));
        prop_assert!(encode3(0, v, 0) < encode3(0, v + 1, 0));
        prop_assert!(encode3(0, 0, v) < encode3(0, 0, v + 1));
    }

    /// Octant nesting: the top interleaved bits of the Z-value select the
    /// octant, so all points of a lower octant sort before any point of a
    /// higher octant at the same level.
    #[test]
    fn octant_nesting(
        x0 in 0u32..512, y0 in 0u32..512, z0 in 0u32..512,
        x1 in 512u32..1024, y1 in 512u32..1024, z1 in 512u32..1024,
    ) {
        // Point entirely within the low half on every axis precedes a point
        // entirely within the high half on every axis (10-bit space).
        prop_assert!(encode3(x0, y0, z0) < encode3(x1, y1, z1));
    }

    /// The 2-D encode agrees with the 3-D encode at z = 0 after removing
    /// the z-lane gaps — checked indirectly through order agreement.
    #[test]
    fn encode2_order_matches_encode3_z0(
        a in (0u32..4096, 0u32..4096),
        b in (0u32..4096, 0u32..4096),
    ) {
        let ord2 = encode2(a.0, a.1).cmp(&encode2(b.0, b.1));
        let ord3 = encode3(a.0, a.1, 0).cmp(&encode3(b.0, b.1, 0));
        prop_assert_eq!(ord2, ord3);
    }

    /// Quantization is translation-consistent: shifting the space and the
    /// point by the same offset yields the same voxel coordinates.
    #[test]
    fn quantize_translation_invariant(
        px in 0.0f64..100.0, py in 0.0f64..100.0, pz in 0.0f64..100.0,
        shift in -50.0f64..50.0,
    ) {
        let space = Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::splat(100.0));
        let shifted = Aabb::new(
            Vec3::splat(shift),
            Vec3::splat(shift + 100.0),
        );
        let p = Vec3::new(px, py, pz);
        let ps = p + Vec3::splat(shift);
        prop_assert_eq!(
            quantize(p, &space, 1.0),
            quantize(ps, &shifted, 1.0)
        );
    }

    /// Hilbert keys over a clamped grid are a bijection on voxel
    /// coordinates: distinct voxels get distinct keys, and decoding
    /// recovers the voxel. (Injectivity + left inverse = bijection onto
    /// the key image, which is what the shard splitter needs: one key ↔
    /// one voxel.)
    #[test]
    fn hilbert_is_a_bijection_on_voxel_coords(
        dx in 1u32..=6, dy in 1u32..=6, dz in 1u32..=6,
    ) {
        let mut seen = std::collections::HashSet::new();
        for z in 0..dz {
            for y in 0..dy {
                for x in 0..dx {
                    let k = hilbert_encode3(x, y, z);
                    prop_assert!(seen.insert(k), "key collision at {:?}", (x, y, z));
                    prop_assert_eq!(hilbert_decode3(k), (x, y, z));
                }
            }
        }
    }

    /// Consecutive Hilbert curve positions are face-adjacent voxels:
    /// walking from key k to k+1 moves exactly one unit step along
    /// exactly one axis, anywhere in the 63-bit key space. This is the
    /// locality property the shard splitter relies on — a contiguous
    /// key span is a connected blob of voxels, so shard surfaces (and
    /// with them the ghost halos) stay small.
    #[test]
    fn hilbert_consecutive_positions_are_face_adjacent(
        k in 0u64..((1u64 << (3 * COORD_BITS)) - 1),
    ) {
        let (ax, ay, az) = hilbert_decode3(k);
        let (bx, by, bz) = hilbert_decode3(k + 1);
        let d = (ax as i64 - bx as i64).abs()
            + (ay as i64 - by as i64).abs()
            + (az as i64 - bz as i64).abs();
        prop_assert_eq!(d, 1, "keys {} and {} are not face-adjacent", k, k + 1);
    }

    /// ShardMap over clamped-grid Hilbert keys: `ranges` on the sorted
    /// key column and `shard_of` on individual keys agree, the ranges
    /// tile the column, and no voxel (key run) straddles two shards.
    #[test]
    fn shard_map_ranges_agree_with_shard_of(
        points in proptest::collection::vec(
            (0.0f64..50.0, 0.0f64..50.0, 0.0f64..50.0), 1..200),
        shards in 1usize..=8,
    ) {
        let space = Aabb::new(Vec3::new(0.0, 0.0, 0.0), Vec3::splat(50.0));
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let zs: Vec<f64> = points.iter().map(|p| p.2).collect();
        let mut keys = cell_keys(&xs, &ys, &zs, &space, 5.0, Curve::Hilbert);
        keys.sort_unstable();
        let map = ShardMap::balanced(&keys, shards);
        let ranges = map.ranges(&keys);
        prop_assert_eq!(ranges.len(), shards);
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges.last().unwrap().end, keys.len());
        for w in ranges.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        for (s, range) in ranges.iter().enumerate() {
            for &k in &keys[range.clone()] {
                prop_assert_eq!(map.shard_of(k), s);
            }
        }
        // No key run straddles a shard boundary.
        for w in keys.windows(2) {
            if w[0] == w[1] {
                prop_assert_eq!(map.shard_of(w[0]), map.shard_of(w[1]));
            }
        }
    }
}
