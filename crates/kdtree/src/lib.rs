//! Baseline kd-tree radius neighborhood search.
//!
//! This is the method the paper *replaces*: BioDynaMo v0.0.9 updates each
//! agent's neighborhood in two steps — "1) building a kd-tree, and
//! 2) searching all the agents' neighbors within a specified radius"
//! (paper §III). Two properties make it the loser of the comparison:
//!
//! * **Serial construction.** Median-split building is a sequential
//!   recursion over the whole point set; the uniform grid builds with one
//!   parallel counting pass. The paper attributes the 4.3× multithreaded
//!   gap between the methods to exactly this (§VI).
//! * **Pointer chasing.** Queries hop through tree nodes with little
//!   spatial regularity, which is hostile to wide SIMT hardware.
//!
//! The implementation is a classic median-split kd-tree over an index
//! arena (no per-node heap allocation), with leaf buckets and iterative
//! radius queries. Query methods optionally report *work counters* (nodes
//! visited, points tested) that feed the analytic CPU timing model in
//! `bdm-device` — the counters are how benchmark figures convert real
//! algorithmic work into modeled Xeon runtimes.

use bdm_math::{Scalar, Vec3};

/// Number of points per leaf bucket. 16 balances tree depth against
/// per-leaf scan cost; BioDynaMo's unibn/kd backends use similar buckets.
const LEAF_SIZE: usize = 16;

#[derive(Debug, Clone)]
enum Node<R> {
    /// Internal split node: points with `coord[axis] < split` are in the
    /// left subtree. `right` is the index of the right child; the left
    /// child is always `self + 1` (pre-order layout).
    Internal { axis: u8, split: R, right: u32 },
    /// Leaf bucket: `indices[start..start+len]` hold the point ids.
    Leaf { start: u32, len: u32 },
}

/// Work counters accumulated during queries; consumed by the CPU timing
/// model (`bdm_device::cpu`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCounters {
    /// Tree nodes visited (internal + leaf).
    pub nodes_visited: u64,
    /// Candidate points distance-tested.
    pub points_tested: u64,
    /// Points accepted as neighbors.
    pub neighbors_found: u64,
}

impl QueryCounters {
    /// Element-wise accumulation (for merging per-thread counters).
    pub fn merge(&mut self, other: &Self) {
        self.nodes_visited += other.nodes_visited;
        self.points_tested += other.points_tested;
        self.neighbors_found += other.neighbors_found;
    }
}

/// Statistics of a tree build; consumed by the CPU timing model.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Number of points indexed.
    pub points: usize,
    /// Total nodes allocated.
    pub nodes: usize,
    /// Maximum leaf depth.
    pub depth: usize,
}

/// A static kd-tree over a snapshot of agent positions.
///
/// The tree is rebuilt from scratch every simulation step, mirroring
/// BioDynaMo's per-step neighborhood update (§III). It stores its own
/// copy of the coordinates: queries then touch tree-local memory exactly
/// like the original's contiguous point storage.
///
/// ```
/// use bdm_kdtree::KdTree;
/// use bdm_math::Vec3;
///
/// let tree = KdTree::build(&[0.0, 1.0, 5.0], &[0.0; 3], &[0.0; 3]);
/// let mut out = Vec::new();
/// tree.radius_search(Vec3::new(0.0, 0.0, 0.0), 1.5, Some(0), &mut out);
/// assert_eq!(out, vec![1]); // point 5.0 is too far; point 0 is excluded
/// ```
#[derive(Debug, Clone)]
pub struct KdTree<R> {
    nodes: Vec<Node<R>>,
    /// Point ids, reordered so each leaf owns a contiguous range.
    indices: Vec<u32>,
    /// Coordinates in leaf order (xyz interleaved per point).
    points: Vec<[R; 3]>,
    stats: BuildStats,
}

impl<R: Scalar> KdTree<R> {
    /// Build from SoA position columns. Serial by design — this *is* the
    /// bottleneck the paper identifies; do not parallelize it.
    pub fn build(xs: &[R], ys: &[R], zs: &[R]) -> Self {
        assert_eq!(xs.len(), ys.len());
        assert_eq!(xs.len(), zs.len());
        let n = xs.len();
        let mut order: Vec<u32> = (0..n as u32).collect();
        let mut pts: Vec<[R; 3]> = (0..n).map(|i| [xs[i], ys[i], zs[i]]).collect();
        let mut nodes = Vec::with_capacity(2 * (n / LEAF_SIZE + 1));
        let mut depth = 0;
        if n > 0 {
            Self::build_recursive(&mut pts, &mut order, 0, &mut nodes, 1, &mut depth);
        }
        let stats = BuildStats {
            points: n,
            nodes: nodes.len(),
            depth,
        };
        Self {
            nodes,
            indices: order,
            points: pts,
            stats,
        }
    }

    /// Recursive median-split over `pts[lo..]`/`order[lo..]` (both are
    /// permuted in tandem so leaves own contiguous coordinate ranges).
    fn build_recursive(
        pts: &mut [[R; 3]],
        order: &mut [u32],
        base: u32,
        nodes: &mut Vec<Node<R>>,
        level: usize,
        max_depth: &mut usize,
    ) {
        let n = pts.len();
        if n <= LEAF_SIZE {
            *max_depth = (*max_depth).max(level);
            nodes.push(Node::Leaf {
                start: base,
                len: n as u32,
            });
            return;
        }
        // Split along the axis with the widest spread (classic heuristic;
        // keeps the tree balanced for anisotropic clouds).
        let mut lo = pts[0];
        let mut hi = pts[0];
        for p in pts.iter() {
            for a in 0..3 {
                lo[a] = lo[a].min(p[a]);
                hi[a] = hi[a].max(p[a]);
            }
        }
        let mut axis = 0usize;
        let mut best = hi[0] - lo[0];
        for a in 1..3 {
            let spread = hi[a] - lo[a];
            if spread > best {
                best = spread;
                axis = a;
            }
        }
        let mid = n / 2;
        // Median partition: O(n) selection, permuting order[] in tandem.
        Self::select_nth(pts, order, mid, axis);
        let split = pts[mid][axis];

        let node_idx = nodes.len();
        nodes.push(Node::Internal {
            axis: axis as u8,
            split,
            right: 0, // patched after the left subtree is emitted
        });
        let (pl, pr) = pts.split_at_mut(mid);
        let (ol, or) = order.split_at_mut(mid);
        Self::build_recursive(pl, ol, base, nodes, level + 1, max_depth);
        let right_idx = nodes.len() as u32;
        if let Node::Internal { right, .. } = &mut nodes[node_idx] {
            *right = right_idx;
        }
        Self::build_recursive(pr, or, base + mid as u32, nodes, level + 1, max_depth);
    }

    /// Quickselect on `pts[..][axis]`, permuting `order` identically.
    fn select_nth(pts: &mut [[R; 3]], order: &mut [u32], nth: usize, axis: usize) {
        let mut lo = 0usize;
        let mut hi = pts.len();
        // Hoare-style partition loop; terminates because the range strictly
        // shrinks around the pivot slot every iteration.
        while hi - lo > 1 {
            let pivot = pts[lo + (hi - lo) / 2][axis];
            let mut i = lo;
            let mut j = hi - 1;
            loop {
                while pts[i][axis] < pivot {
                    i += 1;
                }
                while pts[j][axis] > pivot {
                    j -= 1;
                }
                if i >= j {
                    break;
                }
                pts.swap(i, j);
                order.swap(i, j);
                i += 1;
                // `j` may underflow for j == 0 only if the pivot were
                // smaller than every element, impossible by construction.
                j -= 1;
            }
            let cut = j + 1;
            if nth < cut {
                hi = cut;
            } else {
                lo = cut.max(lo + 1);
            }
            if cut == hi || cut == lo {
                // Degenerate partitions (many equal keys) — fall back to a
                // full sort of the remaining slice; rare, keeps worst cases
                // correct rather than fast.
                let sub = &mut pts[lo..hi];
                let subo = &mut order[lo..hi];
                let mut perm: Vec<usize> = (0..sub.len()).collect();
                perm.sort_by(|&a, &b| {
                    sub[a][axis]
                        .partial_cmp(&sub[b][axis])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let sp: Vec<[R; 3]> = perm.iter().map(|&k| sub[k]).collect();
                let so: Vec<u32> = perm.iter().map(|&k| subo[k]).collect();
                sub.copy_from_slice(&sp);
                subo.copy_from_slice(&so);
                return;
            }
        }
    }

    /// Build statistics (fed to the CPU timing model).
    pub fn stats(&self) -> BuildStats {
        self.stats
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Visit every point within `radius` of `q` (excluding `exclude`,
    /// normally the querying agent itself). The visitor receives the point
    /// id. Returns work counters for the timing model.
    pub fn for_each_within<F: FnMut(u32)>(
        &self,
        q: Vec3<R>,
        radius: R,
        exclude: Option<u32>,
        mut visit: F,
    ) -> QueryCounters {
        let mut counters = QueryCounters::default();
        if self.nodes.is_empty() {
            return counters;
        }
        let r2 = radius * radius;
        let qa = [q.x, q.y, q.z];
        // Explicit stack of node indices; depth ≤ ~64 for any realistic n.
        let mut stack: Vec<u32> = Vec::with_capacity(64);
        stack.push(0);
        while let Some(ni) = stack.pop() {
            counters.nodes_visited += 1;
            match &self.nodes[ni as usize] {
                Node::Leaf { start, len } => {
                    let s = *start as usize;
                    let e = s + *len as usize;
                    for k in s..e {
                        let id = self.indices[k];
                        if Some(id) == exclude {
                            continue;
                        }
                        counters.points_tested += 1;
                        let p = self.points[k];
                        let dx = p[0] - qa[0];
                        let dy = p[1] - qa[1];
                        let dz = p[2] - qa[2];
                        if dx * dx + dy * dy + dz * dz <= r2 {
                            counters.neighbors_found += 1;
                            visit(id);
                        }
                    }
                }
                Node::Internal { axis, split, right } => {
                    let a = *axis as usize;
                    let d = qa[a] - *split;
                    let (near, far) = if d < R::ZERO {
                        (ni + 1, *right)
                    } else {
                        (*right, ni + 1)
                    };
                    // Far side only when the slab distance allows it.
                    if d * d <= r2 {
                        stack.push(far);
                    }
                    stack.push(near);
                }
            }
        }
        counters
    }

    /// Collect neighbor ids into `out` (cleared first).
    pub fn radius_search(
        &self,
        q: Vec3<R>,
        radius: R,
        exclude: Option<u32>,
        out: &mut Vec<u32>,
    ) -> QueryCounters {
        out.clear();
        self.for_each_within(q, radius, exclude, |id| out.push(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bdm_math::SplitMix64;

    fn cloud(n: usize, seed: u64, extent: f64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let mut rng = SplitMix64::new(seed);
        let xs = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        let ys = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        let zs = (0..n).map(|_| rng.uniform(0.0, extent)).collect();
        (xs, ys, zs)
    }

    fn brute_force(
        xs: &[f64],
        ys: &[f64],
        zs: &[f64],
        q: Vec3<f64>,
        r: f64,
        exclude: Option<u32>,
    ) -> Vec<u32> {
        let r2 = r * r;
        (0..xs.len() as u32)
            .filter(|&i| {
                if Some(i) == exclude {
                    return false;
                }
                let d = Vec3::new(xs[i as usize], ys[i as usize], zs[i as usize]) - q;
                d.norm_squared() <= r2
            })
            .collect()
    }

    #[test]
    fn empty_tree() {
        let t = KdTree::<f64>::build(&[], &[], &[]);
        assert!(t.is_empty());
        let mut out = Vec::new();
        let c = t.radius_search(Vec3::zero(), 1.0, None, &mut out);
        assert!(out.is_empty());
        assert_eq!(c.nodes_visited, 0);
    }

    #[test]
    fn single_point() {
        let t = KdTree::build(&[1.0], &[2.0], &[3.0]);
        let mut out = Vec::new();
        t.radius_search(Vec3::new(1.0, 2.0, 3.0), 0.5, None, &mut out);
        assert_eq!(out, vec![0]);
        t.radius_search(Vec3::new(9.0, 9.0, 9.0), 0.5, None, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_brute_force_random() {
        let (xs, ys, zs) = cloud(600, 7, 20.0);
        let t = KdTree::build(&xs, &ys, &zs);
        let mut rng = SplitMix64::new(11);
        for _ in 0..50 {
            let q = Vec3::new(
                rng.uniform(0.0, 20.0),
                rng.uniform(0.0, 20.0),
                rng.uniform(0.0, 20.0),
            );
            let r = rng.uniform(0.5, 5.0);
            let mut got = Vec::new();
            t.radius_search(q, r, None, &mut got);
            got.sort_unstable();
            let expected = brute_force(&xs, &ys, &zs, q, r, None);
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn exclude_self() {
        let (xs, ys, zs) = cloud(100, 3, 5.0);
        let t = KdTree::build(&xs, &ys, &zs);
        let q = Vec3::new(xs[10], ys[10], zs[10]);
        let mut got = Vec::new();
        t.radius_search(q, 2.0, Some(10), &mut got);
        assert!(!got.contains(&10));
        got.sort_unstable();
        assert_eq!(got, brute_force(&xs, &ys, &zs, q, 2.0, Some(10)));
    }

    #[test]
    fn duplicate_points_are_handled() {
        // Degenerate input: all points identical. The selection fallback
        // must terminate and the query must return everything.
        let n = 100;
        let xs = vec![1.0; n];
        let ys = vec![2.0; n];
        let zs = vec![3.0; n];
        let t = KdTree::build(&xs, &ys, &zs);
        let mut out = Vec::new();
        t.radius_search(Vec3::new(1.0, 2.0, 3.0), 0.1, None, &mut out);
        assert_eq!(out.len(), n);
    }

    #[test]
    fn counters_reflect_work() {
        let (xs, ys, zs) = cloud(2000, 5, 30.0);
        let t = KdTree::build(&xs, &ys, &zs);
        let mut out = Vec::new();
        let c = t.radius_search(Vec3::splat(15.0), 3.0, None, &mut out);
        assert!(c.nodes_visited > 0);
        assert!(c.points_tested >= out.len() as u64);
        assert_eq!(c.neighbors_found, out.len() as u64);
        // Pruning must be effective: a small-radius query tests far fewer
        // points than the whole cloud.
        assert!(c.points_tested < 2000);
    }

    #[test]
    fn build_stats_sane() {
        let (xs, ys, zs) = cloud(1000, 9, 10.0);
        let t = KdTree::build(&xs, &ys, &zs);
        let s = t.stats();
        assert_eq!(s.points, 1000);
        assert!(s.nodes >= 1000 / LEAF_SIZE);
        assert!(s.depth >= 6, "depth {} too shallow", s.depth); // ≈ log2(1000/16) + 1
        assert!(s.depth <= 40, "depth {} too deep", s.depth);
    }

    #[test]
    fn query_on_boundary_radius_inclusive() {
        let t = KdTree::build(&[0.0, 3.0], &[0.0, 0.0], &[0.0, 0.0]);
        let mut out = Vec::new();
        t.radius_search(Vec3::zero(), 3.0, None, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1]); // distance exactly 3.0 is included
    }

    #[test]
    fn collinear_points_build_and_query() {
        // Pathological input: all points on a line (zero spread on two
        // axes) — the widest-axis heuristic must still terminate and
        // queries must stay exact.
        let n = 500;
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.1).collect();
        let ys = vec![1.0; n];
        let zs = vec![-2.0; n];
        let t = KdTree::build(&xs, &ys, &zs);
        let mut out = Vec::new();
        t.radius_search(Vec3::new(25.0, 1.0, -2.0), 0.55, None, &mut out);
        out.sort_unstable();
        // Points at x ∈ [24.45, 25.55]: indices 245..=255.
        assert_eq!(out, (245u32..=255).collect::<Vec<_>>());
    }

    #[test]
    fn two_clusters_prune_each_other() {
        // Two distant blobs: a query in one must not test the other.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut zs = Vec::new();
        let mut rng = SplitMix64::new(44);
        for c in [0.0, 1000.0] {
            for _ in 0..300 {
                xs.push(c + rng.uniform(0.0, 5.0));
                ys.push(rng.uniform(0.0, 5.0));
                zs.push(rng.uniform(0.0, 5.0));
            }
        }
        let t = KdTree::build(&xs, &ys, &zs);
        let mut out = Vec::new();
        let c = t.radius_search(Vec3::new(2.5, 2.5, 2.5), 2.0, None, &mut out);
        assert!(c.points_tested <= 300, "tested {} points", c.points_tested);
        assert!(out.iter().all(|&i| i < 300));
    }

    #[test]
    fn f32_instantiation_matches_f64_on_coarse_data() {
        let (xs, ys, zs) = cloud(300, 13, 10.0);
        let xs32: Vec<f32> = xs.iter().map(|&v| v as f32).collect();
        let ys32: Vec<f32> = ys.iter().map(|&v| v as f32).collect();
        let zs32: Vec<f32> = zs.iter().map(|&v| v as f32).collect();
        let t64 = KdTree::build(&xs, &ys, &zs);
        let t32 = KdTree::build(&xs32, &ys32, &zs32);
        let q = Vec3::new(5.0f64, 5.0, 5.0);
        let mut o64 = Vec::new();
        let mut o32 = Vec::new();
        t64.radius_search(q, 2.5, None, &mut o64);
        t32.radius_search(q.cast::<f32>(), 2.5, None, &mut o32);
        o64.sort_unstable();
        o32.sort_unstable();
        // With random (non-pathological) data the boundary set is empty,
        // so the neighbor sets agree exactly.
        assert_eq!(o64, o32);
    }
}
