//! Property-based tests: the kd-tree radius query must agree with brute
//! force on arbitrary point clouds, radii, and query points.

use bdm_kdtree::KdTree;
use bdm_math::Vec3;
use proptest::prelude::*;

fn brute(xs: &[f64], ys: &[f64], zs: &[f64], q: Vec3<f64>, r: f64) -> Vec<u32> {
    let r2 = r * r;
    (0..xs.len() as u32)
        .filter(|&i| {
            let d = Vec3::new(xs[i as usize], ys[i as usize], zs[i as usize]) - q;
            d.norm_squared() <= r2
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Exact agreement with brute force, including clustered/duplicated
    /// coordinates (values snap to a 0.25 lattice to force ties).
    #[test]
    fn agrees_with_brute_force(
        points in proptest::collection::vec((0i32..64, 0i32..64, 0i32..64), 0..400),
        q in (0i32..64, 0i32..64, 0i32..64),
        r_quarter in 1i32..24,
    ) {
        let xs: Vec<f64> = points.iter().map(|p| p.0 as f64 * 0.25).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1 as f64 * 0.25).collect();
        let zs: Vec<f64> = points.iter().map(|p| p.2 as f64 * 0.25).collect();
        let tree = KdTree::build(&xs, &ys, &zs);
        let qv = Vec3::new(q.0 as f64 * 0.25, q.1 as f64 * 0.25, q.2 as f64 * 0.25);
        let r = r_quarter as f64 * 0.25;
        let mut got = Vec::new();
        tree.radius_search(qv, r, None, &mut got);
        got.sort_unstable();
        prop_assert_eq!(got, brute(&xs, &ys, &zs, qv, r));
    }

    /// Neighbor counts reported by counters equal the result length.
    #[test]
    fn counters_consistent(
        points in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0, -50.0f64..50.0), 1..200),
        r in 0.1f64..20.0,
    ) {
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let zs: Vec<f64> = points.iter().map(|p| p.2).collect();
        let tree = KdTree::build(&xs, &ys, &zs);
        let q = Vec3::new(xs[0], ys[0], zs[0]);
        let mut out = Vec::new();
        let c = tree.radius_search(q, r, Some(0), &mut out);
        prop_assert_eq!(c.neighbors_found as usize, out.len());
        prop_assert!(c.points_tested >= c.neighbors_found);
        prop_assert!(!out.contains(&0));
    }
}
