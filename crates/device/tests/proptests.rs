//! Property-based tests of the machine models.

use bdm_device::cpu::{CpuModel, Phase};
use bdm_device::specs::{SYSTEM_A, SYSTEM_B};
use bdm_device::{AccessOutcome, CacheSim};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any access stream: hits + misses = accesses, and re-running
    /// the identical stream on a warmed cache can only improve hits.
    #[test]
    fn cache_conservation_and_warmup(
        addrs in proptest::collection::vec(0u64..1_000_000, 1..500),
        ways in 1u32..8,
    ) {
        let mut c = CacheSim::new(16 * 1024, ways, 128);
        for &a in &addrs {
            c.access(a);
        }
        let first = c.stats();
        prop_assert_eq!(first.accesses(), addrs.len() as u64);
        for &a in &addrs {
            c.access(a);
        }
        let second = c.stats();
        // Second pass hits at least as much per access as the first
        // (the warmed cache contains a suffix of the stream).
        prop_assert!(second.hits - first.hits >= first.hits || addrs.len() < 2 ||
            (second.hits - first.hits) as f64 / addrs.len() as f64
                >= first.hit_rate() - 1e-9);
    }

    /// The number of misses is at least the number of distinct lines
    /// (compulsory misses) for any stream on a cold cache.
    #[test]
    fn compulsory_miss_lower_bound(
        addrs in proptest::collection::vec(0u64..100_000, 1..400),
    ) {
        let mut c = CacheSim::new(1 << 20, 16, 128);
        for &a in &addrs {
            c.access(a);
        }
        let distinct: std::collections::HashSet<u64> =
            addrs.iter().map(|a| a / 128).collect();
        prop_assert!(c.stats().misses >= distinct.len() as u64);
    }

    /// A cache large enough for the whole working set has *exactly*
    /// the compulsory misses.
    #[test]
    fn big_cache_only_compulsory_misses(
        lines in proptest::collection::vec(0u64..64, 1..300),
    ) {
        // 64 possible lines, 8 KiB cache = 64 lines: everything fits.
        let mut c = CacheSim::new(8 * 1024, 8, 128);
        for &l in &lines {
            c.access(l * 128);
        }
        let distinct: std::collections::HashSet<u64> = lines.iter().copied().collect();
        prop_assert_eq!(c.stats().misses, distinct.len() as u64);
    }

    /// Repeating one address always hits after the first access,
    /// regardless of interleaved accesses to one other line.
    #[test]
    fn pinned_line_survives_one_competitor(reps in 1usize..50) {
        let mut c = CacheSim::new(4096, 2, 128); // ≥ 2 ways: both lines fit a set
        c.access(0);
        for _ in 0..reps {
            c.access(128 * 1024); // a different set or a second way
            prop_assert_eq!(c.access(0), AccessOutcome::Hit);
        }
    }

    /// CPU model: time never increases with more threads, and the
    /// serial flag pins a phase's time.
    #[test]
    fn cpu_time_monotone_in_threads(
        flops in 1e6f64..1e12,
        bytes in 0f64..1e10,
        random in 0f64..1e8,
    ) {
        let m = CpuModel::new(SYSTEM_B.cpu);
        let p = Phase::parallel_fp64("p", flops, bytes, random);
        let mut last = f64::INFINITY;
        for t in [1u32, 2, 4, 8, 16, 32, 64] {
            let now = m.phase_time(&p, t).seconds;
            prop_assert!(now <= last * 1.001, "slower with more threads at {t}");
            last = now;
        }
        let s = Phase::serial_fp64("s", flops, bytes, random);
        prop_assert_eq!(
            m.phase_time(&s, 1).seconds,
            m.phase_time(&s, 64).seconds
        );
    }

    /// CPU model: time is (weakly) monotone in every work component.
    #[test]
    fn cpu_time_monotone_in_work(
        flops in 1e6f64..1e11,
        bytes in 1e3f64..1e9,
        random in 0f64..1e7,
        threads in 1u32..64,
    ) {
        let m = CpuModel::new(SYSTEM_A.cpu);
        let base = m
            .phase_time(&Phase::parallel_fp64("b", flops, bytes, random), threads)
            .seconds;
        for grown in [
            Phase::parallel_fp64("f", flops * 2.0, bytes, random),
            Phase::parallel_fp64("y", flops, bytes * 2.0, random),
            Phase::parallel_fp64("r", flops, bytes, random * 2.0 + 1.0),
        ] {
            prop_assert!(m.phase_time(&grown, threads).seconds >= base - 1e-15);
        }
    }

    /// FP32 phases are never slower than FP64 phases of the same shape.
    #[test]
    fn fp32_never_slower(
        flops in 1e6f64..1e11,
        bytes in 0f64..1e9,
        threads in 1u32..64,
    ) {
        let m = CpuModel::new(SYSTEM_A.cpu);
        let p64 = Phase::parallel_fp64("a", flops, bytes, 0.0);
        let p32 = Phase { fp64: false, ..p64 };
        prop_assert!(
            m.phase_time(&p32, threads).seconds <= m.phase_time(&p64, threads).seconds + 1e-15
        );
    }
}
