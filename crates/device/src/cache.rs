//! Trace-driven set-associative cache simulation.
//!
//! The GPU simulator routes every coalesced memory transaction through a
//! model of the device's L2 cache; hits are served at L2 latency, misses
//! count as HBM traffic. This is the machinery that makes the paper's
//! Improvement II *emergent*: Morton-sorted agents touch fewer distinct
//! lines with more reuse, so the simulated hit rate rises — exactly the
//! L2-read-share effect the authors report via `nvprof` (39.4 % → 41.3 %
//! across densities, §VI).
//!
//! Real GPU L2s are physically partitioned into slices addressed by a hash
//! of the line address; [`ShardedCache`] mirrors that, which conveniently
//! also gives the rayon-parallel warp simulation a low-contention locking
//! scheme (one `parking_lot::Mutex` per slice).

use parking_lot::Mutex;

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Line present.
    Hit,
    /// Line absent; it was filled (and possibly evicted a victim).
    Miss,
}

/// Aggregate counters of a cache (or cache slice).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction in `[0, 1]` (0 when no accesses).
    pub fn hit_rate(&self) -> f64 {
        let total = self.accesses();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Element-wise accumulation.
    pub fn merge(&mut self, other: &Self) {
        self.hits += other.hits;
        self.misses += other.misses;
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Tags are stored per set with an LRU stamp; the structure is sized for
/// simulation speed, not realism of replacement metadata.
#[derive(Debug)]
pub struct CacheSim {
    line_bytes: u64,
    sets: usize,
    ways: usize,
    /// `tags[set * ways + way]` = line address or `u64::MAX` when invalid.
    tags: Vec<u64>,
    /// Monotonic use stamps parallel to `tags`.
    stamps: Vec<u64>,
    clock: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// Build a cache of `capacity_bytes` with `ways` associativity and
    /// `line_bytes` lines. Set count is rounded down to a power of two so
    /// the index is a mask.
    pub fn new(capacity_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        assert!(ways >= 1 && line_bytes.is_power_of_two());
        let ways = ways as usize;
        let lines = (capacity_bytes / line_bytes as u64).max(ways as u64) as usize;
        let raw_sets = (lines / ways).max(1);
        // Round down to a power of two so the set index is a mask.
        let sets = 1usize << (usize::BITS - 1 - raw_sets.leading_zeros());
        Self {
            line_bytes: line_bytes as u64,
            sets,
            ways,
            tags: vec![u64::MAX; sets * ways],
            stamps: vec![0; sets * ways],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// Access the line containing `addr`.
    pub fn access(&mut self, addr: u64) -> AccessOutcome {
        self.clock += 1;
        let line = addr / self.line_bytes;
        let set = (line as usize) & (self.sets - 1);
        let base = set * self.ways;
        let ways = &mut self.tags[base..base + self.ways];
        // Hit?
        for (w, tag) in ways.iter().enumerate() {
            if *tag == line {
                self.stamps[base + w] = self.clock;
                self.stats.hits += 1;
                return AccessOutcome::Hit;
            }
        }
        // Miss: fill LRU way.
        let mut victim = 0;
        let mut oldest = u64::MAX;
        for w in 0..self.ways {
            let s = self.stamps[base + w];
            if self.tags[base + w] == u64::MAX {
                victim = w;
                break;
            }
            if s < oldest {
                oldest = s;
                victim = w;
            }
        }
        self.tags[base + victim] = line;
        self.stamps[base + victim] = self.clock;
        self.stats.misses += 1;
        AccessOutcome::Miss
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Invalidate everything and zero the counters.
    pub fn reset(&mut self) {
        self.tags.fill(u64::MAX);
        self.stamps.fill(0);
        self.clock = 0;
        self.stats = CacheStats::default();
    }
}

/// An L2 cache partitioned into address-hashed slices, each behind its own
/// mutex — the concurrency structure of a real GPU L2, reused here so
/// parallel warp simulation contends minimally.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<CacheSim>>,
    line_bytes: u64,
}

impl ShardedCache {
    /// Split `capacity_bytes` across `shards` slices.
    pub fn new(capacity_bytes: u64, ways: u32, line_bytes: u32, shards: usize) -> Self {
        assert!(shards >= 1);
        let per_shard = (capacity_bytes / shards as u64).max(line_bytes as u64 * ways as u64);
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(CacheSim::new(per_shard, ways, line_bytes)))
                .collect(),
            line_bytes: line_bytes as u64,
        }
    }

    /// Access the line containing `addr` through its slice.
    pub fn access(&self, addr: u64) -> AccessOutcome {
        let line = addr / self.line_bytes;
        // Simple multiplicative hash → slice id; keeps neighboring lines in
        // different slices the way real partition hashes do.
        let shard = (line.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 48) as usize % self.shards.len();
        self.shards[shard].lock().access(addr)
    }

    /// Aggregate counters across slices.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in &self.shards {
            total.merge(&s.lock().stats());
        }
        total
    }

    /// Invalidate all slices and zero all counters.
    pub fn reset(&self) {
        for s in &self.shards {
            s.lock().reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(64 * 1024, 8, 128);
        assert_eq!(c.access(0), AccessOutcome::Miss);
        assert_eq!(c.access(0), AccessOutcome::Hit);
        assert_eq!(c.access(64), AccessOutcome::Hit); // same 128B line
        assert_eq!(c.access(128), AccessOutcome::Miss); // next line
        let s = c.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn capacity_eviction() {
        // 4 lines total (2 sets × 2 ways, 128B lines).
        let mut c = CacheSim::new(512, 2, 128);
        assert_eq!(c.sets(), 2);
        // Fill set 0 (even lines) beyond its 2 ways.
        assert_eq!(c.access(0), AccessOutcome::Miss); // line 0 → set 0
        assert_eq!(c.access(256), AccessOutcome::Miss); // line 2 → set 0
        assert_eq!(c.access(512), AccessOutcome::Miss); // line 4 → set 0, evicts line 0 (LRU)
        assert_eq!(c.access(0), AccessOutcome::Miss); // line 0 gone
    }

    #[test]
    fn lru_keeps_recently_used() {
        let mut c = CacheSim::new(512, 2, 128);
        c.access(0); // line 0
        c.access(256); // line 2
        c.access(0); // touch line 0 → line 2 is now LRU
        c.access(512); // evicts line 2
        assert_eq!(c.access(0), AccessOutcome::Hit);
        assert_eq!(c.access(256), AccessOutcome::Miss);
    }

    #[test]
    fn streaming_never_hits_sequential_lines() {
        let mut c = CacheSim::new(16 * 1024, 16, 128);
        for i in 0..1000u64 {
            c.access(i * 128);
        }
        // Pure streaming with distinct lines: all misses.
        assert_eq!(c.stats().misses, 1000);
        assert_eq!(c.stats().hits, 0);
    }

    #[test]
    fn working_set_within_capacity_hits_on_second_pass() {
        let mut c = CacheSim::new(128 * 1024, 16, 128);
        let lines = 512u64; // 64 KiB working set, fits in 128 KiB
        for i in 0..lines {
            c.access(i * 128);
        }
        let misses_first = c.stats().misses;
        for i in 0..lines {
            c.access(i * 128);
        }
        let s = c.stats();
        assert_eq!(misses_first, lines);
        assert_eq!(s.hits, lines, "second pass must fully hit");
    }

    #[test]
    fn reset_clears_state() {
        let mut c = CacheSim::new(4096, 4, 128);
        c.access(0);
        c.reset();
        assert_eq!(c.stats().accesses(), 0);
        assert_eq!(c.access(0), AccessOutcome::Miss);
    }

    #[test]
    fn sharded_aggregates_stats() {
        let c = ShardedCache::new(64 * 1024, 8, 128, 8);
        for i in 0..100u64 {
            c.access(i * 128);
        }
        for i in 0..100u64 {
            c.access(i * 128);
        }
        let s = c.stats();
        assert_eq!(s.accesses(), 200);
        assert_eq!(s.misses, 100);
        assert_eq!(s.hits, 100);
    }

    #[test]
    fn sharded_is_usable_from_threads() {
        let c = std::sync::Arc::new(ShardedCache::new(64 * 1024, 8, 128, 4));
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..1000u64 {
                        c.access((t * 1_000_000 + i) * 128);
                    }
                });
            }
        });
        assert_eq!(c.stats().accesses(), 4000);
    }

    #[test]
    fn hit_rate_empty_is_zero() {
        let c = CacheSim::new(4096, 4, 128);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }
}
