//! Hardware specifications — the paper's Table I, plus the
//! microarchitectural parameters the timing models need.
//!
//! Quantities printed in the paper's Table I are encoded verbatim
//! (GPU RAM, memory bandwidth, single/double-precision TFLOPS, core
//! counts, CPU DRAM). Parameters the table omits but the models require
//! (SM counts, clock rates, cache geometries, PCIe bandwidth) come from
//! the public vendor datasheets of the same parts and are documented
//! field-by-field.

/// GPU device specification.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"NVIDIA GTX 1080 Ti"`.
    pub name: &'static str,
    /// Device memory capacity in bytes (Table I "GPU RAM").
    pub dram_bytes: u64,
    /// Device memory bandwidth in bytes/s (Table I "Memory bandwidth").
    pub dram_bandwidth: f64,
    /// Peak FP32 throughput in FLOP/s (Table I "Single-precision").
    pub fp32_flops: f64,
    /// Peak FP64 throughput in FLOP/s (Table I "Double-precision").
    pub fp64_flops: f64,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// SM clock in Hz (boost clock; kernels in the paper run warmed up).
    pub clock_hz: f64,
    /// L2 cache capacity in bytes.
    pub l2_bytes: u64,
    /// L2 cache line (sector granularity is finer on real parts; the
    /// simulator works in full 128-byte lines like the coalescer).
    pub l2_line_bytes: u32,
    /// L2 associativity used by the simulator.
    pub l2_ways: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// Threads per warp.
    pub warp_size: u32,
    /// Maximum resident threads per SM (occupancy ceiling).
    pub max_threads_per_sm: u32,
    /// Kernel launch overhead in seconds (driver + dispatch).
    pub launch_overhead_s: f64,
    /// Effective DRAM access latency in cycles (used for the latency
    /// component of isolated, uncoalesced accesses).
    pub dram_latency_cycles: u32,
    /// L2 hit latency in cycles.
    pub l2_latency_cycles: u32,
}

impl GpuSpec {
    /// FP64:FP32 throughput ratio (32 on consumer Pascal, 2 on V100) —
    /// the quantity the paper quotes when motivating Improvement I.
    pub fn fp64_ratio(&self) -> f64 {
        self.fp32_flops / self.fp64_flops
    }

    /// Peak FLOP/s at the given precision.
    pub fn peak_flops(&self, fp64: bool) -> f64 {
        if fp64 {
            self.fp64_flops
        } else {
            self.fp32_flops
        }
    }

    /// Total FP32 lanes (for per-SM issue modeling): peak = lanes × clock
    /// × 2 (FMA counts as two FLOPs).
    pub fn fp32_lanes(&self) -> f64 {
        self.fp32_flops / (self.clock_hz * 2.0)
    }
}

/// CPU specification (one *system*'s CPU complex, i.e. both sockets).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Marketing name, e.g. `"Intel Xeon E5-2640 v4"`.
    pub name: &'static str,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Number of sockets (both Table I systems are dual-socket NUMA).
    pub sockets: u32,
    /// Base clock in Hz.
    pub clock_hz: f64,
    /// Sustained double-precision GFLOP/s *per core* for irregular,
    /// non-vectorized simulation code (not the SIMD-FMA peak: the force
    /// kernel chases pointers and calls `sqrt`, so sustained throughput
    /// is an order of magnitude below peak — a standard assumption when
    /// modeling pointer-heavy workloads).
    pub sustained_gflops_per_core_fp64: f64,
    /// Memory bandwidth per socket in bytes/s.
    pub socket_bandwidth: f64,
    /// Bandwidth a single core can draw in bytes/s (limited by its
    /// outstanding-miss budget, well below the socket ceiling).
    pub per_core_bandwidth: f64,
    /// Effective DRAM latency in seconds for dependent random accesses.
    pub dram_latency_s: f64,
    /// Memory-level parallelism per core (outstanding misses a core
    /// overlaps on independent random accesses).
    pub mlp: f64,
    /// Host DRAM capacity in bytes (Table I "CPU DRAM").
    pub dram_bytes: u64,
    /// Throughput penalty multiplier when threads span both sockets
    /// (cross-NUMA traffic; the paper pins to one socket with `taskset`
    /// to avoid this — our model reproduces the penalty when not pinned).
    pub numa_penalty: f64,
}

impl CpuSpec {
    /// Total physical cores.
    pub fn total_cores(&self) -> u32 {
        self.cores_per_socket * self.sockets
    }

    /// Sustained FP throughput of `threads` threads in FLOP/s at the
    /// given precision (FP32 sustains ~2× FP64 on these Xeons thanks to
    /// double SIMD width).
    pub fn sustained_flops(&self, threads: u32, fp64: bool) -> f64 {
        let per_core = self.sustained_gflops_per_core_fp64 * 1e9 * if fp64 { 1.0 } else { 2.0 };
        // Hyper-threads beyond the physical core count add ~25% each, a
        // typical SMT yield for compute-heavy loops.
        let physical = threads.min(self.total_cores()) as f64;
        let smt = (threads.saturating_sub(self.total_cores())) as f64 * 0.25;
        per_core * (physical + smt)
    }

    /// Aggregate memory bandwidth available to `threads` threads,
    /// honoring the per-core draw limit, the socket ceiling, and the
    /// NUMA penalty when the thread count spills onto the second socket.
    pub fn bandwidth(&self, threads: u32) -> f64 {
        let threads = threads.max(1);
        let one_socket_threads = self.cores_per_socket * 2; // with SMT
        if threads <= one_socket_threads {
            (threads as f64 * self.per_core_bandwidth).min(self.socket_bandwidth)
        } else {
            // Spanning sockets: both memory controllers, minus NUMA traffic.
            let total = (threads as f64 * self.per_core_bandwidth)
                .min(self.socket_bandwidth * self.sockets as f64);
            total * self.numa_penalty
        }
    }

    /// Random-access throughput (dependent pointer chases per second)
    /// achievable by `threads` threads.
    ///
    /// Two ceilings apply: the latency/MLP limit (each thread overlaps
    /// `mlp` outstanding misses of `dram_latency_s` each) and the
    /// bandwidth limit (every random access transfers a full 64-byte
    /// cache line, so the aggregate rate can never exceed
    /// `bandwidth / 64`). The second ceiling is what makes thread
    /// scaling "marginal" on memory-bound neighbor traversals — the
    /// effect the paper observes in Fig. 10.
    pub fn random_access_rate(&self, threads: u32) -> f64 {
        let latency_limit = threads.max(1) as f64 * self.mlp / self.dram_latency_s;
        let bandwidth_limit = self.bandwidth(threads) / 64.0;
        latency_limit.min(bandwidth_limit)
    }
}

/// A complete benchmark system (one row of Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemSpec {
    /// System label, `"System A"` / `"System B"`.
    pub name: &'static str,
    /// The GPU half.
    pub gpu: GpuSpec,
    /// The CPU half.
    pub cpu: CpuSpec,
    /// Host↔device interconnect bandwidth in bytes/s (PCIe 3.0 ×16
    /// effective ≈ 12 GB/s on both systems).
    pub pcie_bandwidth: f64,
    /// Per-transfer fixed latency in seconds.
    pub pcie_latency_s: f64,
}

/// Table I, System A: GTX 1080 Ti + 2× Xeon E5-2640 v4 (20 cores).
pub const SYSTEM_A: SystemSpec = SystemSpec {
    name: "System A",
    gpu: GpuSpec {
        name: "NVIDIA GTX 1080 Ti",
        dram_bytes: 11 * GB,
        dram_bandwidth: 484.0 * GB_F,
        fp32_flops: 11.34e12,
        fp64_flops: 0.354e12,
        sm_count: 28,
        clock_hz: 1.582e9,
        l2_bytes: 2816 * 1024,
        l2_line_bytes: 128,
        l2_ways: 16,
        shared_mem_per_sm: 96 * 1024,
        warp_size: 32,
        max_threads_per_sm: 2048,
        launch_overhead_s: 8e-6,
        dram_latency_cycles: 400,
        l2_latency_cycles: 200,
    },
    cpu: CpuSpec {
        name: "Intel Xeon E5-2640 v4",
        cores_per_socket: 10,
        sockets: 2,
        clock_hz: 2.4e9,
        sustained_gflops_per_core_fp64: 2.2,
        socket_bandwidth: 68.3 * GB_F, // DDR4-2133, 4 channels
        per_core_bandwidth: 11.0 * GB_F,
        dram_latency_s: 90e-9,
        mlp: 8.0,
        dram_bytes: 256 * GB,
        numa_penalty: 0.8,
    },
    pcie_bandwidth: 12.0 * GB_F,
    pcie_latency_s: 10e-6,
};

/// Table I, System B: Tesla V100 + 2× Xeon Gold 6130 (32 cores).
pub const SYSTEM_B: SystemSpec = SystemSpec {
    name: "System B",
    gpu: GpuSpec {
        name: "NVIDIA Tesla V100",
        dram_bytes: 32 * GB,
        dram_bandwidth: 900.0 * GB_F,
        fp32_flops: 15.7e12,
        fp64_flops: 7.8e12,
        sm_count: 80,
        clock_hz: 1.53e9,
        l2_bytes: 6 * 1024 * 1024,
        l2_line_bytes: 128,
        l2_ways: 16,
        shared_mem_per_sm: 96 * 1024,
        warp_size: 32,
        max_threads_per_sm: 2048,
        launch_overhead_s: 8e-6,
        dram_latency_cycles: 400,
        l2_latency_cycles: 190,
    },
    cpu: CpuSpec {
        name: "Intel Xeon Gold 6130",
        cores_per_socket: 16,
        sockets: 2,
        clock_hz: 2.1e9,
        sustained_gflops_per_core_fp64: 2.4,
        socket_bandwidth: 119.2 * GB_F, // DDR4-2666, 6 channels
        per_core_bandwidth: 12.0 * GB_F,
        dram_latency_s: 85e-9,
        mlp: 10.0,
        dram_bytes: 187 * GB,
        numa_penalty: 0.8,
    },
    pcie_bandwidth: 12.0 * GB_F,
    pcie_latency_s: 10e-6,
};

const GB: u64 = 1024 * 1024 * 1024;
const GB_F: f64 = 1e9;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp64_ratio_matches_paper() {
        // "the FP32 throughput is 32 times greater than the FP64
        // throughput" (paper §VI, about System A).
        let r = SYSTEM_A.gpu.fp64_ratio();
        assert!((r - 32.0).abs() < 0.1, "ratio {r}");
        // V100 is a compute card: ratio 2.
        let r = SYSTEM_B.gpu.fp64_ratio();
        assert!((r - 2.0).abs() < 0.05, "ratio {r}");
    }

    #[test]
    fn table1_headline_numbers() {
        assert_eq!(SYSTEM_A.gpu.dram_bandwidth, 484e9);
        assert_eq!(SYSTEM_B.gpu.dram_bandwidth, 900e9);
        assert_eq!(SYSTEM_A.cpu.total_cores(), 20);
        assert_eq!(SYSTEM_B.cpu.total_cores(), 32);
        assert_eq!(SYSTEM_A.gpu.fp32_flops, 11.34e12);
        assert_eq!(SYSTEM_B.gpu.fp64_flops, 7.8e12);
    }

    #[test]
    fn cpu_bandwidth_saturates_at_socket() {
        let cpu = SYSTEM_A.cpu;
        // 4 threads: per-core limited.
        assert!((cpu.bandwidth(4) - 44e9).abs() < 1e9);
        // 10 threads on one socket: socket-ceiling limited.
        assert_eq!(cpu.bandwidth(10), cpu.socket_bandwidth);
        // 20 threads still fit one socket's SMT; ceiling holds.
        assert_eq!(cpu.bandwidth(20), cpu.socket_bandwidth);
        // 40 threads span sockets: two ceilings × NUMA penalty.
        let bw40 = cpu.bandwidth(40);
        assert!(bw40 > cpu.socket_bandwidth);
        assert!(bw40 <= 2.0 * cpu.socket_bandwidth);
    }

    #[test]
    fn cpu_flops_scale_then_smt_tapers() {
        let cpu = SYSTEM_B.cpu;
        let f8 = cpu.sustained_flops(8, true);
        let f16 = cpu.sustained_flops(16, true);
        let f32t = cpu.sustained_flops(32, true);
        let f64t = cpu.sustained_flops(64, true);
        assert!((f16 / f8 - 2.0).abs() < 1e-9);
        assert!((f32t / f16 - 2.0).abs() < 1e-9);
        // SMT threads contribute but far less than physical cores.
        assert!(f64t > f32t);
        assert!(f64t < 1.5 * f32t);
    }

    #[test]
    fn fp32_sustains_double_fp64_on_cpu() {
        let cpu = SYSTEM_A.cpu;
        assert_eq!(
            cpu.sustained_flops(4, false),
            2.0 * cpu.sustained_flops(4, true)
        );
    }

    #[test]
    fn gpu_lane_count_is_plausible() {
        // 1080 Ti has 3584 CUDA cores.
        let lanes = SYSTEM_A.gpu.fp32_lanes();
        assert!((lanes - 3584.0).abs() < 16.0, "lanes {lanes}");
        // V100 has 5120.
        let lanes = SYSTEM_B.gpu.fp32_lanes();
        assert!((lanes - 5120.0).abs() < 16.0, "lanes {lanes}");
    }

    #[test]
    fn random_access_rate_scales_with_threads() {
        let cpu = SYSTEM_A.cpu;
        assert!(cpu.random_access_rate(8) > 7.9 * cpu.random_access_rate(1));
    }
}
