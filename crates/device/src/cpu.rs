//! Analytic multicore CPU timing model.
//!
//! This environment has a single CPU core, so the paper's 4–64-thread
//! sweeps cannot be wall-clocked. Instead, each CPU-side operation of the
//! simulation is *executed for real* (so its algorithmic work counters —
//! FLOPs, bytes touched, random accesses — are genuine) and its runtime on
//! the Table I Xeons is then *modeled* from those counters.
//!
//! The model is a three-term roofline: a phase's time at `T` threads is
//! the maximum of
//!
//! * a **compute term** — FLOPs over the sustained multicore FP rate,
//! * a **bandwidth term** — bytes over the NUMA-aware aggregate bandwidth,
//! * a **latency term** — dependent random accesses over the aggregate
//!   memory-level parallelism,
//!
//! plus a per-phase parallel-runtime overhead. Phases marked serial run at
//! `T = 1` regardless (the kd-tree build is the canonical example — its
//! serial construction is why the uniform grid wins at 20 threads, §VI).

use crate::specs::CpuSpec;

/// Work performed by one operation phase, as measured by actually running
/// the algorithm and accumulating its counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// Human-readable name ("kd build", "force", …) used in reports.
    pub name: &'static str,
    /// Floating-point operations executed.
    pub flops: f64,
    /// Bytes moved to/from memory with streaming-friendly access.
    pub bytes: f64,
    /// Dependent random accesses (pointer chases: tree-node hops,
    /// successor-list hops) that cannot be prefetched.
    pub random_accesses: f64,
    /// Whether the phase parallelizes across threads.
    pub parallel: bool,
    /// `true` when the FLOPs are double precision.
    pub fp64: bool,
}

impl Phase {
    /// A fully-parallel FP64 phase (the common case).
    pub fn parallel_fp64(name: &'static str, flops: f64, bytes: f64, random: f64) -> Self {
        Self {
            name,
            flops,
            bytes,
            random_accesses: random,
            parallel: true,
            fp64: true,
        }
    }

    /// A serial FP64 phase (e.g. kd-tree construction).
    pub fn serial_fp64(name: &'static str, flops: f64, bytes: f64, random: f64) -> Self {
        Self {
            parallel: false,
            ..Self::parallel_fp64(name, flops, bytes, random)
        }
    }
}

/// Per-phase modeled time, with the binding constraint identified.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTime {
    /// Phase name (copied through for reports).
    pub name: &'static str,
    /// Modeled seconds.
    pub seconds: f64,
    /// Which roofline term bound the phase.
    pub bound_by: Bound,
}

/// The binding constraint of a modeled phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bound {
    /// Limited by FP throughput.
    Compute,
    /// Limited by memory bandwidth.
    Bandwidth,
    /// Limited by dependent-access latency.
    Latency,
}

/// The CPU timing model for one spec.
#[derive(Debug, Clone, Copy)]
pub struct CpuModel {
    /// The processor being modeled.
    pub spec: CpuSpec,
    /// Fixed parallel-region overhead per phase per step (thread wake-up,
    /// barrier; ~5 µs is typical of OpenMP/rayon pools).
    pub fork_join_overhead_s: f64,
}

impl CpuModel {
    /// Model with default overheads.
    pub fn new(spec: CpuSpec) -> Self {
        Self {
            spec,
            fork_join_overhead_s: 5e-6,
        }
    }

    /// Time one phase at `threads` threads.
    pub fn phase_time(&self, phase: &Phase, threads: u32) -> PhaseTime {
        let t = if phase.parallel { threads.max(1) } else { 1 };
        let compute = phase.flops / self.spec.sustained_flops(t, phase.fp64);
        let bandwidth = phase.bytes / self.spec.bandwidth(t);
        let latency = phase.random_accesses / self.spec.random_access_rate(t);
        let (seconds, bound_by) = if compute >= bandwidth && compute >= latency {
            (compute, Bound::Compute)
        } else if bandwidth >= latency {
            (bandwidth, Bound::Bandwidth)
        } else {
            (latency, Bound::Latency)
        };
        let overhead = if phase.parallel && threads > 1 {
            self.fork_join_overhead_s
        } else {
            0.0
        };
        PhaseTime {
            name: phase.name,
            seconds: seconds + overhead,
            bound_by,
        }
    }

    /// Total modeled time of a sequence of phases (phases execute one
    /// after another within a simulation step).
    pub fn total_time(&self, phases: &[Phase], threads: u32) -> f64 {
        phases
            .iter()
            .map(|p| self.phase_time(p, threads).seconds)
            .sum()
    }

    /// Per-phase breakdown.
    pub fn breakdown(&self, phases: &[Phase], threads: u32) -> Vec<PhaseTime> {
        phases.iter().map(|p| self.phase_time(p, threads)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::{SYSTEM_A, SYSTEM_B};

    fn flop_phase(flops: f64) -> Phase {
        Phase::parallel_fp64("flops", flops, 0.0, 0.0)
    }

    #[test]
    fn compute_phase_scales_with_threads() {
        let m = CpuModel::new(SYSTEM_A.cpu);
        let p = flop_phase(1e9);
        let t1 = m.phase_time(&p, 1).seconds;
        let t10 = m.phase_time(&p, 10).seconds;
        // Near-linear for compute-bound phases (overhead is tiny here).
        assert!(t1 / t10 > 8.0, "speedup {}", t1 / t10);
    }

    #[test]
    fn serial_phase_ignores_threads() {
        let m = CpuModel::new(SYSTEM_A.cpu);
        let p = Phase::serial_fp64("serial", 1e9, 0.0, 0.0);
        assert_eq!(m.phase_time(&p, 1).seconds, m.phase_time(&p, 20).seconds);
    }

    #[test]
    fn bandwidth_phase_saturates() {
        let m = CpuModel::new(SYSTEM_A.cpu);
        // Pure streaming phase: 10 GB.
        let p = Phase::parallel_fp64("stream", 0.0, 10e9, 0.0);
        let t10 = m.phase_time(&p, 10).seconds;
        let t20 = m.phase_time(&p, 20).seconds;
        // One socket's ceiling reached at 10 threads; 20 threads (still one
        // socket with SMT) gain nothing — the paper's "marginal reduction".
        assert!((t10 - t20).abs() / t10 < 0.05);
        assert_eq!(m.phase_time(&p, 10).bound_by, Bound::Bandwidth);
    }

    #[test]
    fn latency_phase_identified() {
        let m = CpuModel::new(SYSTEM_A.cpu);
        let p = Phase::parallel_fp64("chase", 0.0, 0.0, 1e8);
        assert_eq!(m.phase_time(&p, 4).bound_by, Bound::Latency);
    }

    #[test]
    fn binding_term_is_max() {
        let m = CpuModel::new(SYSTEM_B.cpu);
        let p = Phase::parallel_fp64("mixed", 1e9, 1e9, 1e6);
        let pt = m.phase_time(&p, 8);
        let compute = 1e9 / m.spec.sustained_flops(8, true);
        let bw = 1e9 / m.spec.bandwidth(8);
        let lat = 1e6 / m.spec.random_access_rate(8);
        let expect = compute.max(bw).max(lat) + m.fork_join_overhead_s;
        assert!((pt.seconds - expect).abs() < 1e-12);
    }

    #[test]
    fn total_is_sum_of_phases() {
        let m = CpuModel::new(SYSTEM_A.cpu);
        let phases = [
            Phase::serial_fp64("build", 1e8, 1e8, 1e6),
            Phase::parallel_fp64("force", 1e9, 5e8, 1e7),
        ];
        let total = m.total_time(&phases, 16);
        let sum: f64 = m.breakdown(&phases, 16).iter().map(|p| p.seconds).sum();
        assert!((total - sum).abs() < 1e-15);
    }

    #[test]
    fn amdahl_shape_serial_plus_parallel() {
        // A workload that is half serial stops speeding up: the classic
        // reason the kd-tree pipeline scales poorly.
        let m = CpuModel::new(SYSTEM_A.cpu);
        let phases = [
            Phase::serial_fp64("build", 1e9, 0.0, 0.0),
            Phase::parallel_fp64("force", 1e9, 0.0, 0.0),
        ];
        let t1 = m.total_time(&phases, 1);
        let t20 = m.total_time(&phases, 20);
        let speedup = t1 / t20;
        assert!(speedup < 2.1, "Amdahl bound violated: {speedup}");
        assert!(speedup > 1.5);
    }

    #[test]
    fn fp32_compute_phase_is_faster() {
        let m = CpuModel::new(SYSTEM_A.cpu);
        let p64 = Phase::parallel_fp64("f", 1e9, 0.0, 0.0);
        let p32 = Phase { fp64: false, ..p64 };
        let t64 = m.phase_time(&p64, 4).seconds;
        let t32 = m.phase_time(&p32, 4).seconds;
        assert!(t64 / t32 > 1.9);
    }
}
