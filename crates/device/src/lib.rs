//! Machine models for the reproduction.
//!
//! The paper benchmarks on two physical systems (Table I) that this
//! environment does not have: dual-socket Xeons with 20/32 cores and
//! NVIDIA GTX 1080 Ti / Tesla V100 GPUs. Following the reproduction's
//! substitution rule (see `DESIGN.md` §2), *all reported runtimes are
//! produced by machine models over genuinely measured work counters*:
//!
//! * [`specs`] encodes Table I verbatim — clock rates, core counts,
//!   memory bandwidths, FP32/FP64 throughput, cache sizes.
//! * [`cache`] is a set-associative LRU cache simulator used by the GPU
//!   simulator's L2 model (sharded by address like a real GPU's L2
//!   slices so warps can be simulated in parallel).
//! * [`cpu`] is an analytic multicore timing model (roofline-style:
//!   compute / bandwidth / memory-latency terms, NUMA-aware thread
//!   scaling) fed by per-phase work counters.
//! * [`transfer`] models host↔device copies over PCIe.

pub mod cache;
pub mod cpu;
pub mod specs;
pub mod transfer;

pub use cache::{AccessOutcome, CacheSim, CacheStats, ShardedCache};
pub use cpu::{CpuModel, Phase, PhaseTime};
pub use specs::{CpuSpec, GpuSpec, SystemSpec, SYSTEM_A, SYSTEM_B};
pub use transfer::PcieModel;
