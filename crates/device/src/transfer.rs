//! Host↔device transfer model (PCIe).
//!
//! GPU co-processing in BioDynaMo copies the SoA columns the mechanical
//! interaction needs (positions, diameters, adherence, …) to the device
//! each step and the computed displacements back (paper §IV-B). The paper
//! notes that FP32 "reduces the size of the buffers that need to be copied
//! back and forth", so transfer time participates in the Improvement I
//! speedup — this model charges exactly `bytes / bandwidth + latency` per
//! direction.

/// PCIe transfer timing.
#[derive(Debug, Clone, Copy)]
pub struct PcieModel {
    /// Effective bandwidth in bytes/s.
    pub bandwidth: f64,
    /// Fixed per-transfer latency in seconds (driver call + DMA setup).
    pub latency_s: f64,
}

impl PcieModel {
    /// Model from a system spec's interconnect numbers.
    pub fn new(bandwidth: f64, latency_s: f64) -> Self {
        assert!(bandwidth > 0.0);
        Self {
            bandwidth,
            latency_s,
        }
    }

    /// Seconds to move one transfer of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_s + bytes as f64 / self.bandwidth
    }

    /// Seconds to move `n` separate transfers totaling `bytes`
    /// (each pays the fixed latency; batching columns into fewer copies
    /// is a real optimization this makes visible).
    pub fn transfers_time(&self, n: u32, total_bytes: u64) -> f64 {
        n as f64 * self.latency_s + total_bytes as f64 / self.bandwidth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_is_latency_plus_bytes_over_bw() {
        let m = PcieModel::new(12e9, 10e-6);
        let t = m.transfer_time(12_000_000); // 1 ms of wire time
        assert!((t - (10e-6 + 1e-3)).abs() < 1e-12);
    }

    #[test]
    fn fp32_halves_wire_time() {
        let m = PcieModel::new(12e9, 0.0);
        assert!((m.transfer_time(8_000_000) / m.transfer_time(4_000_000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn batching_saves_latency() {
        let m = PcieModel::new(12e9, 10e-6);
        let many = m.transfers_time(10, 1_000_000);
        let one = m.transfers_time(1, 1_000_000);
        assert!((many - one - 9.0 * 10e-6).abs() < 1e-12);
    }
}
