//! Offline stand-in for the subset of `proptest` this workspace's tests
//! use. The build container has no crates.io access, so the workspace
//! vendors the surface it calls:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * range / tuple / `collection::vec` / [`arbitrary::any`] strategies and
//!   [`strategy::Strategy::prop_map`],
//! * [`sample::Index`],
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Each test runs `ProptestConfig::cases` generated cases from a PRNG
//! seeded by the test's name, so runs are deterministic and failures
//! reproduce. The real crate's shrinking machinery is intentionally
//! absent: a failing case panics with its case number and the assertion
//! message, which is enough to debug the kinds of properties tested here.

pub mod test_runner {
    //! Config and the deterministic case generator.

    /// Per-test configuration (only the knob this workspace sets).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; 64 keeps the heavier simulation
            // properties fast while still exercising a broad input space.
            Self { cases: 64 }
        }
    }

    /// SplitMix64 — deterministic, seedable from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name (FNV-1a over the bytes).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self { state: h }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `u64` in `[0, bound)` (multiply-shift reduction).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let width = (hi - lo + 1) as u64;
                    // width 0 ⇔ the full u64 domain: take the raw draw.
                    if width == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(width) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(i32, u32, i64, u64, usize, u8, u16);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4)
    );
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification for [`vec`], built from the usual range types.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Index sampling, mirroring `proptest::sample`.

    /// An index into a collection of as-yet-unknown size; resolve with
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(pub(crate) u64);

    impl Index {
        /// Map onto `0..len` (uniform up to negligible modulo bias).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()`, mirroring `proptest::arbitrary`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draw an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for i32 {
        fn arbitrary(rng: &mut TestRng) -> i32 {
            rng.next_u64() as i32
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, spanning a broad magnitude range —
            // the useful slice of the domain for numeric properties.
            rng.unit_f64() * 2e6 - 1e6
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index(rng.next_u64())
        }
    }

    /// Strategy for any [`Arbitrary`] type.
    #[derive(Debug)]
    pub struct Any<A>(PhantomData<A>);

    impl<A> Clone for Any<A> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The canonical strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

/// Assert a condition inside a property; panics with the case context.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Define property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($p:pat in $s:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases {
                    let __run = || {
                        $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)+
                        $body
                    };
                    if let Err(payload) =
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(__run))
                    {
                        eprintln!(
                            "proptest case {}/{} of `{}` failed (deterministic seed; rerun reproduces it)",
                            __case + 1, __config.cases, stringify!($name)
                        );
                        std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! Mirror of `proptest::prelude`.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3i32..17, y in 0u32..=5, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!((-2.0..2.0).contains(&f));
        }

        /// Tuples, vec and prop_map compose.
        #[test]
        fn composition(
            v in crate::collection::vec((0i32..10, 0i32..10), 1..20),
            m in (0u32..4).prop_map(|k| k * 100),
            idx in any::<crate::sample::Index>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&(a, b)| a < 10 && b < 10));
            prop_assert!(m % 100 == 0 && m <= 300);
            prop_assert!(idx.index(v.len()) < v.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        let s = 0u64..1000;
        let xs: Vec<u64> = (0..16).map(|_| s.generate(&mut a)).collect();
        let ys: Vec<u64> = (0..16).map(|_| s.generate(&mut b)).collect();
        assert_eq!(xs, ys);
    }
}
