//! Offline stand-in for `parking_lot`, wrapping `std::sync` primitives
//! behind parking_lot's signatures (`lock()` returning the guard directly,
//! no poisoning). A poisoned std lock means a holder panicked; propagating
//! that panic — what `expect` does here — matches parking_lot's observable
//! behavior closely enough for this workspace's cache-slice locking.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Mutual exclusion with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    /// Acquire the lock, blocking the thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Consume and return the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// Reader-writer lock with parking_lot's panic-free signatures.
#[derive(Debug, Default)]
pub struct RwLock<T>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_usable_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
