//! Offline stand-in for the subset of `criterion` this workspace's benches
//! use. The harness shape (`criterion_group!` / `criterion_main!`, groups,
//! `bench_function`, `bench_with_input`, `Bencher::iter`) is preserved so
//! bench sources compile unchanged; measurement is a plain adaptive timer
//! (warm up, then run until ~25 ms or 10k iterations) reporting the mean
//! per-iteration time. No statistical analysis, outlier rejection, or HTML
//! reports — read the numbers as indicative, not publication-grade.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter as the label.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    /// Mean per-iteration time of the last `iter` call.
    last: Duration,
}

impl Bencher {
    /// Measure `f`: one warmup call, then batches until the total
    /// measured time passes ~25 ms (or 10k iterations).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        let budget = Duration::from_millis(25);
        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < budget && iters < 10_000 {
            std::hint::black_box(f());
            iters += 1;
        }
        self.last = start.elapsed() / iters.max(1) as u32;
    }
}

fn report(group: Option<&str>, label: &str, time: Duration) {
    let full = match group {
        Some(g) => format!("{g}/{label}"),
        None => label.to_string(),
    };
    println!(
        "bench {full:<48} {:>12.3} µs/iter",
        time.as_secs_f64() * 1e6
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sample-count hint; accepted for API compatibility, ignored by the
    /// adaptive timer.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run `f` under `id` and report it.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            last: Duration::ZERO,
        };
        f(&mut b);
        report(Some(&self.name), &id.label, b.last);
        self
    }

    /// Run `f` with `input` under `id` and report it.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            last: Duration::ZERO,
        };
        f(&mut b, input);
        report(Some(&self.name), &id.label, b.last);
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirror of criterion's CLI hookup; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            last: Duration::ZERO,
        };
        f(&mut b);
        report(None, &id.label, b.last);
        self
    }
}

/// Re-export for sources that use `criterion::black_box`.
pub use std::hint::black_box;

/// Define a benchmark group function calling each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        let mut ran = 0u64;
        g.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran > 1, "adaptive timer never re-ran the closure");
    }

    #[test]
    fn id_labels() {
        assert_eq!(BenchmarkId::new("a", 3).label, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
