//! Sequential stand-in for the subset of `rayon` this workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the exact API surface it calls — `into_par_iter`, `par_iter`,
//! `par_chunks_mut`, `par_sort_by_key` and the usual adapter chain — and
//! executes it on the calling thread. Every `par_*` call site keeps the
//! same types and the same (deterministic) results; only the actual
//! fork-join execution is elided. Wall-clock parallel speedups in this
//! repo are modeled analytically (see `bdm-device::cpu`), so the shim
//! does not invalidate any reported numbers.
//!
//! Correctness note: sequential execution is a legal schedule of every
//! data-parallel loop written against rayon, so code that is correct under
//! rayon is correct under this shim (the converse — catching races — is
//! what the real dependency would add).

/// Sequential adapter wrapping a standard iterator; provides the rayon
/// combinator names so `use rayon::prelude::*` call sites compile as-is.
pub struct ParIter<I>(I);

impl<I: Iterator> ParIter<I> {
    /// rayon's `map`.
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> ParIter<std::iter::Map<I, F>> {
        ParIter(self.0.map(f))
    }

    /// rayon's `filter`.
    pub fn filter<P: FnMut(&I::Item) -> bool>(self, p: P) -> ParIter<std::iter::Filter<I, P>> {
        ParIter(self.0.filter(p))
    }

    /// rayon's `enumerate`.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// rayon's `for_each` (runs in iterator order here, which is a legal
    /// rayon schedule).
    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }

    /// rayon's `collect`.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    /// rayon's `sum`.
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    /// rayon's `reduce` (sequential fold from the identity).
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        self.0.fold(identity(), op)
    }

    /// rayon's `zip`.
    pub fn zip<J: IntoIterator>(self, other: J) -> ParIter<std::iter::Zip<I, J::IntoIter>> {
        ParIter(self.0.zip(other))
    }
}

/// Anything iterable gains `into_par_iter` (covers ranges and `Vec`).
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// rayon's `into_par_iter`.
    fn into_par_iter(self) -> ParIter<Self::IntoIter> {
        ParIter(self.into_iter())
    }
}
impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// Shared-reference iteration over slices (`par_iter`).
pub trait IntoParallelRefIterator {
    /// Element type.
    type Item;
    /// rayon's `par_iter`.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, Self::Item>>;
}
impl<T> IntoParallelRefIterator for [T] {
    type Item = T;
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }
}

/// Mutable-reference iteration over slices (`par_iter_mut`).
pub trait IntoParallelRefMutIterator {
    /// Element type.
    type Item;
    /// rayon's `par_iter_mut`.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, Self::Item>>;
}
impl<T> IntoParallelRefMutIterator for [T] {
    type Item = T;
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter(self.iter_mut())
    }
}

/// Slice chunking (`par_chunks`).
pub trait ParallelSlice<T> {
    /// rayon's `par_chunks`.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}
impl<T> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// Mutable slice chunking and sorting (`par_chunks_mut`, `par_sort_by_key`).
pub trait ParallelSliceMut<T> {
    /// rayon's `par_chunks_mut`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
    /// rayon's `par_sort_by_key` — stable, like the original.
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
}
impl<T> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter(self.chunks_mut(chunk_size))
    }
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_by_key(f)
    }
}

/// Number of worker threads the "pool" would use (1: this shim runs on the
/// calling thread).
pub fn current_num_threads() -> usize {
    1
}

pub mod prelude {
    //! Mirror of `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_map_collect() {
        let v: Vec<usize> = (0..5usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn slice_par_iter_and_sort() {
        let data = [3u32, 1, 2];
        let doubled: Vec<u32> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![6, 2, 4]);
        let mut keys = vec![2u32, 0, 1, 0];
        keys.par_sort_by_key(|&k| k);
        assert_eq!(keys, vec![0, 0, 1, 2]);
    }

    #[test]
    fn chunks_mut_enumerate() {
        let mut buf = vec![0u32; 6];
        buf.par_chunks_mut(2).enumerate().for_each(|(i, c)| {
            for v in c {
                *v = i as u32;
            }
        });
        assert_eq!(buf, vec![0, 0, 1, 1, 2, 2]);
    }
}
