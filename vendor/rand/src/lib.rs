//! Offline stand-in for the subset of `rand` this workspace's tests use:
//! `rngs::StdRng` seeded via `SeedableRng::seed_from_u64`, and
//! `seq::SliceRandom::shuffle`. The generator is SplitMix64 — statistically
//! fine for test shuffles, deterministic across platforms, and emphatically
//! not cryptographic (neither caller needs it to be).

/// Core generator interface: a source of `u64`s (and derived widths).
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform `usize` in `[0, bound)`. Uses the multiply-shift reduction;
    /// the modulo bias at 64 bits is far below anything a test can observe.
    fn gen_index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}
impl<R: RngCore> Rng for R {}

pub mod rngs {
    //! Named generator types.
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: SplitMix64 under the hood.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

pub mod seq {
    //! Slice sampling/shuffling, mirroring `rand::seq`.
    use super::{Rng, RngCore};

    /// `shuffle` extension for slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_index(i + 1);
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    //! Mirror of `rand::prelude`.
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use crate::seq::SliceRandom;
    use crate::{RngCore, SeedableRng};

    #[test]
    fn deterministic_and_nontrivial() {
        let mut a = crate::rngs::StdRng::seed_from_u64(7);
        let mut b = crate::rngs::StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
